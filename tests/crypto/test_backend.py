"""Tests for the crypto execution backends (serial vs process-pool).

The contract under test: for the same master RNG state, every backend
produces bit-identical ciphertext batches — worker count, chunking, and
scheduling must not leak into results (randomness is derived per item
before dispatch).
"""

import pickle
import random

import pytest

from repro.core import ChiaroscuroParams
from repro.crypto import (
    FastEncryptor,
    FixedBaseTable,
    ProcessPoolBackend,
    SerialBackend,
    create_backend,
    decrypt,
)


@pytest.fixture(scope="module")
def plaintexts():
    rng = random.Random(21)
    return [rng.randrange(1 << 32) for _ in range(12)]


class TestSerialBackend:
    def test_encrypts_decryptable_ciphertexts(self, threshold_keypair, plaintexts):
        backend = SerialBackend()
        cts = backend.encrypt_batch(
            threshold_keypair.public, plaintexts, random.Random(0)
        )
        assert [decrypt(threshold_keypair.private, c) for c in cts] == plaintexts

    def test_deterministic_given_seed(self, threshold_keypair, plaintexts):
        backend = SerialBackend()
        a = backend.encrypt_batch(threshold_keypair.public, plaintexts, random.Random(5))
        b = backend.encrypt_batch(threshold_keypair.public, plaintexts, random.Random(5))
        assert a == b

    def test_partial_decrypt_batch_matches_scalar(self, threshold_keypair, plaintexts):
        from repro.crypto import partial_decrypt

        backend = SerialBackend()
        cts = backend.encrypt_batch(
            threshold_keypair.public, plaintexts, random.Random(1)
        )
        share = threshold_keypair.shares[0]
        batch = backend.partial_decrypt_batch(threshold_keypair.context, share, cts)
        assert batch == [
            partial_decrypt(threshold_keypair.context, share, c) for c in cts
        ]


class TestProcessPoolBackend:
    def test_identical_to_serial(self, threshold_keypair, plaintexts):
        """The reproducibility guarantee: pool == serial, bit for bit."""
        serial = SerialBackend()
        pool = ProcessPoolBackend(max_workers=2, min_batch=1)
        try:
            a = serial.encrypt_batch(
                threshold_keypair.public, plaintexts, random.Random(7)
            )
            b = pool.encrypt_batch(
                threshold_keypair.public, plaintexts, random.Random(7)
            )
            assert a == b
        finally:
            pool.close()

    def test_identical_with_fast_encryptor(self, threshold_keypair, plaintexts):
        encryptor = FastEncryptor(
            threshold_keypair.public, random.Random(9), exponent_bits=128
        )
        serial = SerialBackend(encryptor)
        pool = ProcessPoolBackend(max_workers=2, encryptor=encryptor, min_batch=1)
        try:
            a = serial.encrypt_batch(
                threshold_keypair.public, plaintexts, random.Random(8)
            )
            b = pool.encrypt_batch(
                threshold_keypair.public, plaintexts, random.Random(8)
            )
            assert a == b
            assert [decrypt(threshold_keypair.private, c) for c in a] == plaintexts
        finally:
            pool.close()

    def test_partial_decrypt_identical_to_serial(self, threshold_keypair, plaintexts):
        serial = SerialBackend()
        pool = ProcessPoolBackend(max_workers=2, min_batch=1)
        try:
            cts = serial.encrypt_batch(
                threshold_keypair.public, plaintexts, random.Random(2)
            )
            share = threshold_keypair.shares[1]
            assert pool.partial_decrypt_batch(
                threshold_keypair.context, share, cts
            ) == serial.partial_decrypt_batch(threshold_keypair.context, share, cts)
        finally:
            pool.close()

    def test_small_batches_stay_in_process(self, threshold_keypair):
        pool = ProcessPoolBackend(max_workers=2, min_batch=100)
        cts = pool.encrypt_batch(threshold_keypair.public, [1, 2, 3], random.Random(3))
        assert pool._executor is None  # never spun up
        assert [decrypt(threshold_keypair.private, c) for c in cts] == [1, 2, 3]

    def test_close_is_reusable(self, threshold_keypair, plaintexts):
        pool = ProcessPoolBackend(max_workers=2, min_batch=1)
        first = pool.encrypt_batch(
            threshold_keypair.public, plaintexts[:4], random.Random(4)
        )
        pool.close()
        second = pool.encrypt_batch(
            threshold_keypair.public, plaintexts[:4], random.Random(4)
        )
        pool.close()
        assert first == second


def _worker_native_builds() -> int:
    """Executed *inside* a pool worker: its process-local build counter."""
    return FixedBaseTable.native_builds


class TestWarmup:
    """Fixed-base table construction is once-per-process, not per-round.

    ``FixedBaseTable.native_builds`` counts the expensive native-row
    (re)builds process-wide; a long run must pay it once per worker (via
    the pool initializer's ``warm()``), never per encryption batch.
    """

    def test_serial_rounds_never_rebuild(self, threshold_keypair):
        encryptor = FastEncryptor(
            threshold_keypair.public, random.Random(17), exponent_bits=128
        ).warm()
        backend = SerialBackend(encryptor)
        before = FixedBaseTable.native_builds
        for round_no in range(6):
            backend.encrypt_batch(
                threshold_keypair.public, [1, 2, 3], random.Random(round_no)
            )
        assert FixedBaseTable.native_builds == before

    def test_unpickled_encryptor_warms_exactly_once(self, threshold_keypair):
        """The worker lifecycle, in-process: unpickling drops the native
        cache, ``warm()`` rebuilds it once, batches after that are free."""
        encryptor = FastEncryptor(
            threshold_keypair.public, random.Random(19), exponent_bits=128
        )
        shipped = pickle.loads(pickle.dumps(encryptor))
        before = FixedBaseTable.native_builds
        shipped.warm()
        assert FixedBaseTable.native_builds == before + 1
        backend = SerialBackend(shipped)
        for round_no in range(4):
            backend.encrypt_batch(
                threshold_keypair.public, [4, 5, 6], random.Random(round_no)
            )
        assert FixedBaseTable.native_builds == before + 1

    def test_pool_worker_builds_do_not_scale_with_rounds(
        self, threshold_keypair, plaintexts
    ):
        """Real pool leg: after N encrypt rounds the single worker's
        build counter equals what it was after round one."""
        encryptor = FastEncryptor(
            threshold_keypair.public, random.Random(23), exponent_bits=128
        )
        pool = ProcessPoolBackend(max_workers=1, encryptor=encryptor, min_batch=1)
        try:
            pool.encrypt_batch(
                threshold_keypair.public, plaintexts, random.Random(0)
            )
            builds_after_first = pool._pool().submit(_worker_native_builds).result()
            for round_no in range(1, 5):
                pool.encrypt_batch(
                    threshold_keypair.public, plaintexts, random.Random(round_no)
                )
            builds_after_many = pool._pool().submit(_worker_native_builds).result()
        finally:
            pool.close()
        assert builds_after_many == builds_after_first


class TestSelection:
    def test_create_backend_names(self):
        assert create_backend("serial").name == "serial"
        backend = create_backend("process", workers=2)
        assert backend.name == "process"
        assert backend.max_workers == 2
        backend.close()

    def test_create_backend_unknown(self):
        with pytest.raises(ValueError, match="unknown crypto backend"):
            create_backend("gpu")

    def test_params_accept_backend_fields(self):
        params = ChiaroscuroParams(crypto_backend="process", backend_workers=4)
        assert params.crypto_backend == "process"
        assert params.backend_workers == 4

    def test_params_reject_unknown_backend(self):
        with pytest.raises(ValueError, match="crypto_backend"):
            ChiaroscuroParams(crypto_backend="quantum")

    def test_params_reject_negative_workers(self):
        with pytest.raises(ValueError, match="backend_workers"):
            ChiaroscuroParams(backend_workers=-1)
