"""Unit tests for the number-theory primitives."""

import random

import pytest

from repro.crypto.numtheory import (
    FixedBaseTable,
    crt_pair,
    fixture_safe_primes,
    gcd,
    is_probable_prime,
    lcm,
    modinv,
    random_prime,
    random_safe_prime,
)


class TestMillerRabin:
    def test_small_primes(self):
        for p in (2, 3, 5, 7, 11, 101, 7919):
            assert is_probable_prime(p)

    def test_small_composites(self):
        for c in (0, 1, 4, 9, 15, 91, 7917, 561, 41041):  # incl. Carmichael
            assert not is_probable_prime(c)

    def test_large_known_prime(self):
        assert is_probable_prime(2**127 - 1)  # Mersenne prime

    def test_large_known_composite(self):
        assert not is_probable_prime(2**128 + 1)

    def test_negative(self):
        assert not is_probable_prime(-7)


class TestPrimeGeneration:
    def test_random_prime_bits(self):
        rng = random.Random(0)
        p = random_prime(48, rng)
        assert p.bit_length() == 48
        assert is_probable_prime(p)

    def test_random_prime_rejects_tiny(self):
        with pytest.raises(ValueError):
            random_prime(1, random.Random(0))

    def test_safe_prime_structure(self):
        rng = random.Random(0)
        p = random_safe_prime(32, rng)
        assert is_probable_prime(p)
        assert is_probable_prime((p - 1) // 2)
        assert p.bit_length() == 32


class TestFixtures:
    @pytest.mark.parametrize("bits", [64, 96, 128, 192, 256, 512])
    def test_fixture_safe_primes_are_safe(self, bits):
        for p in fixture_safe_primes(bits, count=2):
            assert p.bit_length() == bits
            assert is_probable_prime(p, rounds=10)
            assert is_probable_prime((p - 1) // 2, rounds=10)

    def test_fixtures_distinct(self):
        primes = fixture_safe_primes(128, count=4)
        assert len(set(primes)) == 4

    def test_missing_size_raises(self):
        with pytest.raises(KeyError):
            fixture_safe_primes(77, count=2)


class TestFixedBaseTable:
    def test_matches_builtin_pow(self):
        rng = random.Random(0)
        modulus = fixture_safe_primes(128, count=1)[0]
        base = rng.randrange(2, modulus)
        table = FixedBaseTable(base, modulus, max_exponent_bits=96)
        for _ in range(25):
            e = rng.getrandbits(96)
            assert table.pow(e) == pow(base, e, modulus)

    @pytest.mark.parametrize("window_bits", [1, 3, 5, 8])
    def test_window_sizes_agree(self, window_bits):
        modulus = 10**12 + 39
        table = FixedBaseTable(7, modulus, 64, window_bits=window_bits)
        for e in (0, 1, 2, 63, 2**40 + 17, 2**64 - 1):
            assert table.pow(e) == pow(7, e, modulus)

    def test_exponent_zero_and_max(self):
        table = FixedBaseTable(3, 1009, 8)
        assert table.pow(0) == 1
        assert table.pow(255) == pow(3, 255, 1009)

    def test_out_of_range_exponent_rejected(self):
        table = FixedBaseTable(3, 1009, 8)
        with pytest.raises(ValueError):
            table.pow(256)
        with pytest.raises(ValueError):
            table.pow(-1)

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            FixedBaseTable(3, 1, 8)
        with pytest.raises(ValueError):
            FixedBaseTable(3, 1009, 0)
        with pytest.raises(ValueError):
            FixedBaseTable(3, 1009, 8, window_bits=0)


class TestModularArithmetic:
    def test_modinv(self):
        assert modinv(3, 11) == 4
        assert 3 * modinv(3, 10**9 + 7) % (10**9 + 7) == 1

    def test_modinv_not_invertible(self):
        with pytest.raises(ValueError):
            modinv(6, 9)

    def test_crt_pair(self):
        x = crt_pair(2, 3, 3, 5)
        assert x % 3 == 2 and x % 5 == 3

    def test_crt_pair_large(self):
        m1, m2 = 2**61 - 1, 2**89 - 1
        x = crt_pair(0, m1, 1, m2)
        assert x % m1 == 0 and x % m2 == 1

    def test_crt_requires_coprime(self):
        with pytest.raises(ValueError):
            crt_pair(1, 4, 2, 6)

    def test_gcd_lcm(self):
        assert gcd(12, 18) == 6
        assert lcm(4, 6) == 12
        assert gcd(0, 5) == 5
