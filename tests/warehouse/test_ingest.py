"""Incremental, idempotent ingestion: watermarks, stable keys, torn tails."""

from __future__ import annotations

import json

import pytest

from _wh_helpers import bench_envelope, populate_job, tiny_spec, write_json
from repro.api import Experiment, run_record
from repro.service import JobStore, append_ndjson
from repro.warehouse import (
    Ingester,
    connect,
    ingest_paths,
    read_ndjson_from,
    table_counts,
)


@pytest.fixture()
def con(tmp_path):
    con = connect(tmp_path / "wh.db")
    yield con
    con.close()


class TestReadNdjsonFrom:
    def test_reads_from_offset_and_returns_watermark(self, tmp_path):
        path = tmp_path / "log.ndjson"
        append_ndjson(path, {"i": 0})
        records, offset = read_ndjson_from(path, 0)
        assert [r["i"] for _, r in records] == [0]
        append_ndjson(path, {"i": 1})
        records, offset2 = read_ndjson_from(path, offset)
        assert [r["i"] for _, r in records] == [1]
        assert offset2 > offset

    def test_torn_tail_stays_pending(self, tmp_path):
        path = tmp_path / "log.ndjson"
        append_ndjson(path, {"i": 0})
        with open(path, "a") as fh:
            fh.write('{"i": 1')  # writer mid-append
        records, offset = read_ndjson_from(path, 0)
        assert [r["i"] for _, r in records] == [0]
        with open(path, "a") as fh:
            fh.write(", \"done\": true}\n")  # the newline finally lands
        records, _ = read_ndjson_from(path, offset)
        assert [r["i"] for _, r in records] == [1]

    def test_missing_file_is_empty(self, tmp_path):
        assert read_ndjson_from(tmp_path / "absent.ndjson", 0) == ([], 0)

    def test_undecodable_complete_line_skipped_but_consumed(self, tmp_path):
        path = tmp_path / "log.ndjson"
        with open(path, "w") as fh:
            fh.write("not json\n")
        append_ndjson(path, {"i": 1})
        records, offset = read_ndjson_from(path, 0)
        assert [r["i"] for _, r in records] == [1]
        assert read_ndjson_from(path, offset) == ([], offset)


class TestServiceRootIngestion:
    def test_full_root_lands_in_all_tables(self, con, tmp_path):
        store = JobStore(tmp_path / "svc")
        job_id = populate_job(store, tiny_spec(1))
        delta = ingest_paths(con, [store.root])
        assert delta["jobs"] == 1
        assert delta["runs"] == 1
        assert delta["events"] >= 4  # started, iterations, completed, marker
        run = con.execute(
            "SELECT * FROM runs WHERE job_id = ?", (job_id,)
        ).fetchone()
        assert run["source"] == "job"
        assert run["strategy"] == "G"
        assert run["iterations"] >= 1
        iterations = con.execute(
            "SELECT COUNT(*) FROM iterations WHERE run_key = ?",
            (run["run_key"],),
        ).fetchone()[0]
        assert iterations == run["iterations"]

    def test_double_ingest_is_a_noop(self, con, tmp_path):
        """The idempotency acceptance gate: identical row counts and
        identical query output after a second ingest."""
        store = JobStore(tmp_path / "svc")
        populate_job(store, tiny_spec(1))
        populate_job(store, tiny_spec(2, plane="vectorized"))
        ingest_paths(con, [store.root])
        counts = table_counts(con)
        dump = con.execute(
            "SELECT * FROM runs ORDER BY run_key"
        ).fetchall()
        delta = ingest_paths(con, [store.root])
        assert all(count == 0 for count in delta.values()), delta
        assert table_counts(con) == counts
        assert con.execute(
            "SELECT * FROM runs ORDER BY run_key"
        ).fetchall() == dump

    def test_rescan_without_watermarks_adds_nothing(self, con, tmp_path):
        """Even a from-scratch re-read (watermarks dropped) converges:
        the stable event keys refuse duplicates."""
        store = JobStore(tmp_path / "svc")
        populate_job(store, tiny_spec(1))
        ingest_paths(con, [store.root])
        counts = table_counts(con)
        con.execute("DELETE FROM ingest_files")
        con.commit()
        ingest_paths(con, [store.root])
        after = table_counts(con)
        after.pop("ingest_files")
        counts.pop("ingest_files")
        assert after == counts

    def test_incremental_pass_picks_up_only_new_events(self, con, tmp_path):
        store = JobStore(tmp_path / "svc")
        job_id = populate_job(store, tiny_spec(1))
        ingest_paths(con, [store.root])
        before = table_counts(con)["events"]
        append_ndjson(store.events_path(job_id),
                      {"type": "job_completed", "job": job_id, "seq": 99,
                       "ts": 2.0})
        delta = ingest_paths(con, [store.root])
        assert delta["events"] == 1
        assert table_counts(con)["events"] == before + 1

    def test_preseq_lines_get_offset_keys_and_stay_unique(self, con, tmp_path):
        """Logs written before the seq field existed ingest cleanly and
        re-ingest without duplicates (byte-offset fallback keys)."""
        store = JobStore(tmp_path / "svc")
        job = store.submit(tiny_spec(1))
        for i in range(3):
            append_ndjson(store.events_path(job.job_id),
                          {"type": "iteration_completed", "iteration": i + 1,
                           "job": job.job_id, "ts": float(i)})
        ingest_paths(con, [store.root])
        con.execute("DELETE FROM ingest_files")
        con.commit()
        delta = ingest_paths(con, [store.root])
        assert delta["events"] == 0
        keys = [row[0] for row in con.execute(
            "SELECT event_key FROM events ORDER BY event_key")]
        assert len(keys) == 3
        assert all(":@" in key for key in keys)

    def test_fault_events_populate_detections(self, con, tmp_path):
        store = JobStore(tmp_path / "svc")
        job = store.submit(tiny_spec(1))
        append_ndjson(store.events_path(job.job_id),
                      {"type": "fault_detected", "job": job.job_id, "seq": 0,
                       "ts": 1.0, "iteration": 2, "fault": "byzantine",
                       "detector": "decryption-cross-check",
                       "participants": [4, 9], "detail": {"z": 1}})
        ingest_paths(con, [store.root])
        row = con.execute("SELECT * FROM detections").fetchone()
        assert row["fault"] == "byzantine"
        assert row["detector"] == "decryption-cross-check"
        assert row["participants"] == 2
        assert row["run_key"] == f"job:{job.job_id}"
        assert json.loads(row["detail"]) == {"z": 1}

    def test_abort_marks_run_in_either_ingest_order(self, con, tmp_path):
        """run_aborted before result.json and after both set runs.aborted."""
        store = JobStore(tmp_path / "svc")
        job_id = populate_job(store, tiny_spec(1))
        # Events (with the abort) first, result already present: one pass.
        append_ndjson(store.events_path(job_id),
                      {"type": "run_aborted", "job": job_id, "seq": 50,
                       "ts": 2.0, "iteration": 1, "fault": "byzantine",
                       "reason": "tamper", "epsilon_charged": 0.2})
        ingest_paths(con, [store.root])
        assert con.execute(
            "SELECT aborted FROM runs WHERE job_id = ?", (job_id,)
        ).fetchone()[0] == 1

        # Reverse order: a fresh warehouse sees the abort event only
        # after the run row landed.
        con2 = connect(store.root / "wh2.db")
        ingester = Ingester(con2)
        job_dir = store.job_dir(job_id)
        ingester._ingest_json_once(
            job_dir / "result.json",
            lambda p: ingester._ingest_result_json(p, job_id),
        )
        assert con2.execute("SELECT aborted FROM runs").fetchone()[0] == 0
        ingester.ingest_events_file(job_dir / "events.ndjson", job_id=job_id)
        con2.commit()
        assert con2.execute("SELECT aborted FROM runs").fetchone()[0] == 1
        con2.close()


class TestRecordAndBenchIngestion:
    def test_json_out_record_file(self, con, tmp_path):
        spec = tiny_spec(5, name="standalone")
        result = Experiment.from_spec(spec).run()
        path = write_json(tmp_path / "result.json",
                          run_record(spec, result,
                                     timings={"wall_seconds": 1.0}))
        delta = ingest_paths(con, [path])
        assert delta["runs"] == 1
        row = con.execute("SELECT * FROM runs").fetchone()
        assert row["source"] == "record"
        assert row["name"] == "standalone"
        assert row["wall_seconds"] == 1.0
        assert ingest_paths(con, [path])["runs"] == 0  # fingerprint gate

    def test_changed_record_file_is_reingested_not_duplicated(
        self, con, tmp_path
    ):
        spec = tiny_spec(5, name="standalone")
        result = Experiment.from_spec(spec).run()
        record = run_record(spec, result, timings={"wall_seconds": 1.0})
        path = write_json(tmp_path / "result.json", record)
        ingest_paths(con, [path])
        record["timings"]["wall_seconds"] = 2.0
        write_json(path, record)
        delta = ingest_paths(con, [path])
        assert delta["runs"] == 0  # upsert, not append
        assert con.execute(
            "SELECT wall_seconds FROM runs"
        ).fetchone()[0] == 2.0

    def test_bench_file_points_runs_and_summary(self, con, tmp_path):
        spec = tiny_spec(7, name="attack-probe-mild")
        result = Experiment.from_spec(spec).run()
        envelope = bench_envelope(
            "probe", "abc1234", 1_000.0,
            {
                "schema": "chiaroscuro-run/v1",
                "runs": [run_record(spec, result)],
                "summary": {
                    "probe-mild": {
                        "final_pre_inertia": 12.5,
                        "detections": 3,
                        "detectors": ["exchange-guard", "device-registry"],
                        "aborted": True,
                    },
                    "wall_seconds": 9.0,
                },
            },
        )
        path = write_json(tmp_path / "BENCH_probe.json", envelope)
        delta = ingest_paths(con, [path])
        assert delta["runs"] == 1
        assert delta["bench_points"] > 0
        run = con.execute("SELECT * FROM runs").fetchone()
        assert run["source"] == "bench"
        assert run["bench"] == "probe"
        assert run["git_rev"] == "abc1234"
        assert run["aborted"] == 1  # summary flag reached the matched run
        # The summary's detection total survives the per-detector split.
        total = con.execute(
            "SELECT SUM(count) FROM detections WHERE run_key = ?",
            (run["run_key"],),
        ).fetchone()[0]
        assert total == 3
        detectors = {row[0] for row in con.execute(
            "SELECT detector FROM detections")}
        assert detectors == {"exchange-guard", "device-registry"}
        # Scalar leaves (not the run payloads) became bench points.
        metrics = {row[0] for row in con.execute(
            "SELECT metric FROM bench_points")}
        assert "summary.wall_seconds" in metrics
        assert not any(metric.startswith("runs.") for metric in metrics)
        assert ingest_paths(con, [path]) == {t: 0 for t in delta}

    def test_bench_without_provenance_orders_by_iso_timestamp(
        self, con, tmp_path
    ):
        envelope = bench_envelope("old", "rev1", 0.0, {"metric": 1.0})
        del envelope["provenance"]
        envelope["timestamp"] = "2026-01-02T03:04:05Z"
        write_json(tmp_path / "BENCH_old.json", envelope)
        ingest_paths(con, [tmp_path / "BENCH_old.json"])
        row = con.execute(
            "SELECT unix_time FROM bench_points"
        ).fetchone()
        assert row[0] == pytest.approx(1767323045.0)

    def test_unrecognized_file_is_an_error(self, con, tmp_path):
        path = write_json(tmp_path / "junk.json", {"schema": "other/v9"})
        with pytest.raises(ValueError, match="unrecognized telemetry"):
            ingest_paths(con, [path])

    def test_empty_directory_is_an_error(self, con, tmp_path):
        (tmp_path / "empty").mkdir()
        with pytest.raises(ValueError, match="not a service root"):
            ingest_paths(con, [tmp_path / "empty"])
