"""Acceptance: ``repro report fig3`` reproduces the committed
BENCH_fig3_attack_quality.json comparison purely from ingested records."""

from __future__ import annotations

import json
import pathlib

import pytest

from repro.cli import main
from repro.warehouse import connect, fig3_quality, ingest_paths, report_fig3

BENCH = pathlib.Path(__file__).resolve().parents[2] / (
    "BENCH_fig3_attack_quality.json"
)

pytestmark = pytest.mark.skipif(
    not BENCH.exists(), reason="committed fig3 bench file missing"
)


@pytest.fixture(scope="module")
def warehouse(tmp_path_factory):
    con = connect(tmp_path_factory.mktemp("wh") / "wh.db")
    ingest_paths(con, [BENCH])
    yield con
    con.close()


@pytest.fixture(scope="module")
def summary():
    return json.loads(BENCH.read_text())["data"]["summary"]


class TestFig3Reproduction:
    def test_every_deployment_row_present(self, warehouse, summary):
        names = {row["name"] for row in fig3_quality(warehouse)}
        assert names == {f"attack-{label}" for label in summary}

    def test_final_pre_inertia_matches_committed_summary(
        self, warehouse, summary
    ):
        rows = {row["name"]: row for row in fig3_quality(warehouse)}
        for label, entry in summary.items():
            got = rows[f"attack-{label}"]["final_pre_inertia"]
            assert got == pytest.approx(
                entry["final_pre_inertia"], rel=1e-9
            ), label

    def test_detection_totals_and_detectors_match(self, warehouse, summary):
        rows = {row["name"]: row for row in fig3_quality(warehouse)}
        for label, entry in summary.items():
            row = rows[f"attack-{label}"]
            assert row["detections"] == entry["detections"], label
            got = set(row["detectors"].split(",")) if row["detectors"] else set()
            assert got == set(entry["detectors"]), label

    def test_abort_flags_match(self, warehouse, summary):
        rows = {row["name"]: row for row in fig3_quality(warehouse)}
        for label, entry in summary.items():
            assert bool(rows[f"attack-{label}"]["aborted"]) == bool(
                entry["aborted"]
            ), label

    def test_baseline_ratio_ordering(self, warehouse, summary):
        """Quality-vs-baseline ordering from the warehouse matches the
        committed file's own numbers."""
        rows = {row["name"]: row for row in fig3_quality(warehouse)}
        base = summary["baseline"]["final_pre_inertia"]
        for label, entry in summary.items():
            row = rows[f"attack-{label}"]
            if row["vs_baseline"] is None:
                # collusion rows run on a different dataset — no ratio
                assert "collusion" in label
                continue
            assert row["vs_baseline"] == pytest.approx(
                entry["final_pre_inertia"] / base, rel=1e-9
            ), label

    def test_iterations_match(self, warehouse, summary):
        rows = {row["name"]: row for row in fig3_quality(warehouse)}
        for label, entry in summary.items():
            assert rows[f"attack-{label}"]["iterations"] == entry[
                "iterations"
            ], label


class TestReportRendering:
    def test_text_report_carries_the_comparison(self, warehouse):
        text = report_fig3(warehouse)
        assert "attack-baseline" in text
        assert "attack-collusion-severe" in text
        assert "1352.2" in text  # baseline final pre-inertia, rounded
        assert "64440.7" in text  # collusion plateau

    def test_markdown_report(self, warehouse):
        text = report_fig3(warehouse, fmt="markdown")
        assert text.splitlines()[0].startswith("| ")
        assert "| ---" in text.splitlines()[1]

    def test_empty_warehouse_is_graceful(self, tmp_path):
        con = connect(tmp_path / "wh.db")
        assert "no runs ingested" in report_fig3(con)
        con.close()


class TestCli:
    def test_report_fig3_end_to_end(self, tmp_path, capsys):
        db = tmp_path / "wh.db"
        assert main(["db", "ingest", str(BENCH), "--db", str(db)]) == 0
        capsys.readouterr()
        assert main(["report", "fig3", "--db", str(db)]) == 0
        out = capsys.readouterr().out
        assert "attack-churn-storm-severe" in out
        assert "availability-monitor" in out

    def test_report_like_filter(self, tmp_path, capsys):
        db = tmp_path / "wh.db"
        main(["db", "ingest", str(BENCH), "--db", str(db)])
        capsys.readouterr()
        assert main(
            ["report", "fig3", "--db", str(db), "--like", "attack-byz%"]
        ) == 0
        out = capsys.readouterr().out
        assert "attack-byzantine-mild" in out
        assert "attack-collusion-mild" not in out

    def test_report_on_missing_db_exits_2(self, tmp_path, capsys):
        assert main(
            ["report", "fig3", "--db", str(tmp_path / "absent.db")]
        ) == 2
        assert "no warehouse at" in capsys.readouterr().out
