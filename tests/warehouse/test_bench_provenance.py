"""Satellite: BENCH_*.json envelopes carry an ingestion-ready
provenance block (git_rev + ISO timestamp + numeric epoch), so the
warehouse can order the bench trajectory without filesystem mtimes."""

from __future__ import annotations

import importlib.util
import json
import pathlib
import sys

import pytest

from repro.warehouse import connect, ingest_paths

BENCHMARKS = pathlib.Path(__file__).resolve().parents[2] / "benchmarks"


@pytest.fixture()
def bench_conftest(tmp_path, monkeypatch):
    """The benchmark suite's conftest module, redirected into tmp."""
    spec = importlib.util.spec_from_file_location(
        "bench_conftest_under_test", BENCHMARKS / "conftest.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    monkeypatch.setattr(module, "_OUT_DIR", tmp_path / "out")
    monkeypatch.setattr(module, "_REPO_ROOT", tmp_path / "root")
    (tmp_path / "root").mkdir()
    sys.modules.pop("bench_conftest_under_test", None)
    return module


def test_record_json_envelope_has_provenance(bench_conftest, tmp_path):
    bench_conftest.record_json("probe", {"metric": 1.5})
    mirror = tmp_path / "root" / "BENCH_probe.json"
    assert mirror.exists()
    envelope = json.loads(mirror.read_text())
    assert envelope["schema"] == "chiaroscuro-bench/v1"
    prov = envelope["provenance"]
    assert prov["git_rev"] == envelope["git_rev"]  # legacy key kept
    assert prov["git_rev_full"].startswith(prov["git_rev"])
    assert len(prov["git_rev_full"]) == 40
    assert isinstance(prov["unix_time"], float)
    assert prov["unix_time"] > 1_700_000_000  # a real epoch, not a stub
    # ISO-8601 Zulu, second precision — matches the ingester's parser.
    assert prov["timestamp"] == envelope["timestamp"]
    assert prov["timestamp"].endswith("Z")
    assert len(prov["timestamp"]) == 20
    # out/ and root mirrors are byte-identical.
    assert (tmp_path / "out" / "BENCH_probe.json").read_text() == (
        mirror.read_text()
    )


def test_record_runs_mirror_is_warehouse_ingestible(bench_conftest, tmp_path):
    """What the conftest writes, the warehouse orders by provenance."""
    bench_conftest.record_json("probe", {"metric": 2.0})
    mirror = tmp_path / "root" / "BENCH_probe.json"
    expected = json.loads(mirror.read_text())["provenance"]["unix_time"]

    con = connect(tmp_path / "wh.db")
    delta = ingest_paths(con, [mirror])
    assert delta["bench_points"] == 1
    row = con.execute(
        "SELECT git_rev, unix_time, metric, value FROM bench_points"
    ).fetchone()
    assert row["git_rev"] == json.loads(mirror.read_text())["git_rev"]
    assert row["unix_time"] == pytest.approx(expected)
    assert row["metric"] == "metric"
    assert row["value"] == 2.0
    con.close()


def test_committed_root_mirrors_already_carry_the_block():
    """The repo's own committed BENCH files are on the new envelope or
    at least parseable by the legacy path — none are orphaned."""
    root = BENCHMARKS.parent
    mirrors = sorted(root.glob("BENCH_*.json"))
    assert mirrors, "no committed BENCH mirrors found"
    for path in mirrors:
        envelope = json.loads(path.read_text())
        assert envelope.get("git_rev"), path.name
        assert envelope.get("timestamp", "").endswith("Z"), path.name
