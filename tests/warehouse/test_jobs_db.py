"""``repro jobs --db``: fleet status straight from the warehouse."""

from __future__ import annotations

import json

from _wh_helpers import populate_job, tiny_spec
from repro.cli import main
from repro.service import JobStore
from repro.warehouse import connect, ingest_paths


def _ingested_store(tmp_path, n=3):
    store = JobStore(tmp_path / "svc")
    for seed in range(n):
        populate_job(store, tiny_spec(seed, name=f"fleet-{seed}"))
    db = tmp_path / "wh.db"
    con = connect(db)
    ingest_paths(con, [store.root])
    con.close()
    return store, db


class TestJobsDb:
    def test_lists_jobs_without_touching_the_store(self, tmp_path, capsys):
        store, db = _ingested_store(tmp_path)
        assert main(["jobs", "--db", str(db)]) == 0
        out = capsys.readouterr().out
        for job in store.jobs():
            assert job.job_id in out
        assert "completed" in out

    def test_sort_order_matches_the_store_listing(self, tmp_path, capsys):
        """Deterministic order pin: submit order (submitted_at, then
        job_id) — identical to ``repro jobs`` against the live root."""
        store, db = _ingested_store(tmp_path)
        # Force a submitted_at tie so the job_id tiebreaker is exercised.
        jobs = store.jobs()
        for job in jobs:
            store.update(job.job_id, submitted_at=100.0)
        con = connect(db)
        ingest_paths(con, [store.root])
        con.close()

        assert main(["jobs", "--db", str(db), "--json"]) == 0
        listed = [row["job_id"] for row in json.loads(capsys.readouterr().out)]
        assert listed == sorted(job.job_id for job in jobs)
        # Re-running gives byte-identical output (no hash-order leaks).
        main(["jobs", "--db", str(db), "--json"])
        first = capsys.readouterr().out
        main(["jobs", "--db", str(db), "--json"])
        assert capsys.readouterr().out == first

    def test_state_filter(self, tmp_path, capsys):
        store, db = _ingested_store(tmp_path, n=1)
        pending = store.submit(tiny_spec(9, name="queued-one"))
        con = connect(db)
        ingest_paths(con, [store.root])
        con.close()
        assert main(["jobs", "--db", str(db), "--state", "queued",
                     "--json"]) == 0
        rows = json.loads(capsys.readouterr().out)
        assert [row["job_id"] for row in rows] == [pending.job_id]
        assert rows[0]["state"] == "queued"

    def test_empty_warehouse_message(self, tmp_path, capsys):
        db = tmp_path / "wh.db"
        connect(db).close()
        assert main(["jobs", "--db", str(db)]) == 0
        assert "no jobs ingested" in capsys.readouterr().out

    def test_missing_db_is_exit_2(self, tmp_path, capsys):
        assert main(["jobs", "--db", str(tmp_path / "absent.db")]) == 2
        assert "no warehouse at" in capsys.readouterr().out
