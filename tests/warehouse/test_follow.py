"""Acceptance: ``repro db ingest --follow`` tails a live fleet.

Two angles: a deterministic simulated writer (events appended between
follow cycles, torn tail included), and a real scheduler running a job
in a worker process while ``follow_ingest`` streams its events in.
"""

from __future__ import annotations

import threading

from _wh_helpers import tiny_spec
from repro.api import RunSpec
from repro.service import JobState, JobStore, append_ndjson, run_batch
from repro.warehouse import connect, follow_ingest, table_counts


class TestSimulatedTailing:
    def test_events_stream_in_across_cycles(self, tmp_path):
        """Each follow cycle picks up exactly the lines that landed since
        the previous one; a torn tail parks until its newline arrives."""
        store = JobStore(tmp_path / "svc")
        job = store.submit(tiny_spec(1))
        events = store.events_path(job.job_id)
        append_ndjson(events, {"type": "run_started", "job": job.job_id,
                               "seq": 0, "ts": 0.0})

        con = connect(tmp_path / "wh.db")
        deltas = []
        state = {"cycle": 0}

        def on_cycle(delta):
            state["cycle"] += 1
            deltas.append(delta["events"])
            if state["cycle"] == 1:
                # a full line and the first half of the next one
                append_ndjson(events,
                              {"type": "iteration_completed", "iteration": 1,
                               "job": job.job_id, "seq": 1, "ts": 1.0})
                with open(events, "a") as fh:
                    fh.write('{"type": "iteration_co')
            elif state["cycle"] == 2:
                with open(events, "a") as fh:
                    fh.write('mpleted", "iteration": 2, '
                             f'"job": "{job.job_id}", "seq": 2, "ts": 2.0}}\n')

        totals = follow_ingest(
            con, [store.root], poll_interval=0.0,
            should_stop=lambda: state["cycle"] >= 3, on_cycle=on_cycle,
        )
        # cycle 1: the initial line; cycle 2: the complete second line
        # only (torn third stays pending); cycle 3: the healed tail.
        assert deltas == [1, 1, 1]
        assert totals["events"] == 3
        assert table_counts(con)["events"] == 3
        con.close()


class TestLiveFleet:
    def test_follow_observes_events_before_job_completes(self, tmp_path):
        """The headline acceptance criterion: a follower attached to a
        running ``repro serve`` root sees the job's events while the
        worker is still going."""
        spec = RunSpec.from_dict({
            "name": "follow-live",
            "plane": "vectorized",
            "seed": 3,
            "strategy": "G",
            "dataset": {"kind": "cer",
                        "params": {"n_series": 6000,
                                   "population_scale": 100}},
            "init": {"kind": "courbogen"},
            "params": {"k": 4, "max_iterations": 6, "epsilon": 50.0,
                       "theta": 0.0, "exchanges": 30},
        })
        root = tmp_path / "svc"
        store = JobStore(root)
        failures = []

        def run():
            try:
                run_batch([spec], root, max_workers=1, timeout=120.0)
            except Exception as exc:  # pragma: no cover - surfaced below
                failures.append(exc)

        runner = threading.Thread(target=run)
        runner.start()

        con = connect(tmp_path / "wh.db")
        observations = []

        def on_cycle(delta):
            states = [job.state for job in store.jobs()]
            observations.append(
                (delta["events"], states[0] if states else None)
            )

        def done():
            if runner.is_alive():
                return False
            # one final drain pass already ran after the thread exited
            return bool(observations) and observations[-1][0] == 0

        try:
            totals = follow_ingest(con, [root], poll_interval=0.05,
                                   should_stop=done, on_cycle=on_cycle)
        finally:
            runner.join(timeout=120.0)
        assert not failures, failures

        # Events were ingested while the job was still running.
        live = [(n, state) for n, state in observations
                if n > 0 and state in JobState.PENDING]
        assert live, (
            f"no mid-flight ingestion observed: {observations}"
        )
        # And the follower converged on the full stream: everything the
        # bus wrote is in the warehouse by the time we stop.
        assert totals["events"] == table_counts(con)["events"]
        assert totals["jobs"] == 1
        run = con.execute("SELECT * FROM runs").fetchone()
        assert run["name"] == "follow-live"
        assert run["converged"] is not None
        con.close()
