"""Window-function analytics: running sums, lags, percentiles, deltas."""

from __future__ import annotations

import pytest

from repro.cli import main
from repro.warehouse import (
    bench_trajectory,
    connect,
    detector_counts,
    epsilon_spend,
    fig2_trajectories,
    fig3_quality,
    latency_percentiles,
    report_latency,
    run_query,
    stats,
)


@pytest.fixture()
def con(tmp_path):
    con = connect(tmp_path / "wh.db")
    yield con
    con.close()


def add_run(con, run_key, name="run", strategy="G", plane="quality",
            source="job", job_id=None, bench=None, dataset="cer",
            history=(), final=None, churn=0.0):
    history = list(history)
    con.execute(
        "INSERT INTO runs (run_key, source, job_id, bench, name, strategy, "
        "plane, dataset, churn, iterations, final_pre_inertia) "
        "VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
        (run_key, source, job_id, bench, name, strategy, plane, dataset,
         churn, len(history),
         final if final is not None else (history[-1] if history else None)),
    )
    con.executemany(
        "INSERT INTO iterations (run_key, iteration, pre_inertia, "
        "post_inertia, n_centroids, epsilon_spent) VALUES (?, ?, ?, ?, 3, ?)",
        [(run_key, i + 1, value, value + 1.0, 0.1)
         for i, value in enumerate(history)],
    )
    con.commit()


class TestTrajectories:
    def test_epsilon_running_sum(self, con):
        add_run(con, "job:a", history=[30.0, 20.0, 10.0])
        curve = epsilon_spend(con, run_key="job:a")
        assert [round(row["epsilon_spent_total"], 6) for row in curve] == [
            0.1, 0.2, 0.3]
        assert [round(row["epsilon_before"], 6) for row in curve] == [
            0.0, 0.1, 0.2]

    def test_sma3_window(self, con):
        add_run(con, "job:a", history=[9.0, 3.0, 3.0, 6.0])
        rows = fig2_trajectories(con)
        sma = [round(row["pre_inertia_sma3"], 6) for row in rows]
        # 3-point trailing mean: 9, (9+3)/2, (9+3+3)/3, (3+3+6)/3
        assert sma == [9.0, 6.0, 5.0, 4.0]

    def test_fig2_averages_across_runs_per_strategy(self, con):
        add_run(con, "job:a", strategy="G", history=[10.0, 8.0])
        add_run(con, "job:b", strategy="G", history=[20.0, 12.0])
        add_run(con, "job:c", strategy="UF3", history=[7.0])
        rows = fig2_trajectories(con, strategy="G")
        assert [(r["strategy"], r["iteration"], r["runs"], r["pre_inertia"])
                for r in rows] == [("G", 1, 2, 15.0), ("G", 2, 2, 10.0)]
        all_rows = fig2_trajectories(con)
        assert {r["strategy"] for r in all_rows} == {"G", "UF3"}


class TestFig3:
    def test_ratio_vs_baseline_same_dataset_only(self, con):
        add_run(con, "job:base", name="sweep-baseline", history=[100.0])
        add_run(con, "job:hit", name="sweep-attacked", history=[150.0])
        add_run(con, "job:other", name="sweep-collusion", dataset="points2d",
                history=[9000.0])
        rows = {row["name"]: row for row in fig3_quality(con)}
        assert rows["sweep-baseline"]["vs_baseline"] == 1.0
        assert rows["sweep-attacked"]["vs_baseline"] == 1.5
        # Different dataset: not comparable against this baseline.
        assert rows["sweep-collusion"]["vs_baseline"] is None

    def test_like_filter_and_detections_join(self, con):
        add_run(con, "job:x", job_id="x", name="attack-byz", history=[5.0])
        add_run(con, "job:y", job_id="y", name="other", history=[5.0])
        con.execute(
            "INSERT INTO detections (detection_key, run_key, job_id, fault, "
            "detector, count) VALUES ('x:0', 'job:x', 'x', 'byzantine', "
            "'exchange-guard', 1), ('x:1', 'job:x', 'x', 'byzantine', "
            "'exchange-guard', 1)"
        )
        con.commit()
        rows = fig3_quality(con, like="attack-%")
        assert len(rows) == 1
        assert rows[0]["detections"] == 2
        assert rows[0]["detectors"] == "exchange-guard"

    def test_aborted_from_event_stream(self, con):
        add_run(con, "job:x", job_id="x", name="r", history=[5.0])
        con.execute(
            "INSERT INTO events (event_key, job_id, type, payload) "
            "VALUES ('x:9', 'x', 'run_aborted', '{}')"
        )
        con.commit()
        assert fig3_quality(con)[0]["aborted"] == 1


class TestLatencyAndDetectors:
    def test_percentiles_per_plane(self, con):
        add_run(con, "job:q", job_id="q", plane="quality")
        con.executemany(
            "INSERT INTO events (event_key, job_id, seq, ts, type, payload) "
            "VALUES (?, 'q', ?, ?, 'iteration_completed', '{}')",
            [(f"q:{i}", i, float(i)) for i in range(11)],
        )
        con.commit()
        rows = latency_percentiles(con)
        assert len(rows) == 1
        row = rows[0]
        assert row["plane"] == "quality"
        assert row["iterations"] == 10  # 11 events, 10 gaps
        assert row["p50"] == pytest.approx(1.0)
        assert row["p99"] == pytest.approx(1.0)

    def test_crypto_split_from_event_payloads(self, con):
        """Events carrying ``crypto_ms`` yield the protocol/bigint split;
        planes without the field report None (not 0)."""
        add_run(con, "job:c", job_id="c", plane="vectorized-crypto")
        add_run(con, "job:m", job_id="m", plane="vectorized")
        con.executemany(
            "INSERT INTO events (event_key, job_id, seq, ts, type, payload) "
            "VALUES (?, ?, ?, ?, 'iteration_completed', ?)",
            [(f"c:{i}", "c", i, 2.0 * i, '{"crypto_ms": 1500.0}')
             for i in range(5)]
            + [(f"m:{i}", "m", i, 1.0 * i, "{}") for i in range(5)],
        )
        con.commit()
        rows = {row["plane"]: row for row in latency_percentiles(con)}
        crypto = rows["vectorized-crypto"]
        # 2-second gaps, 1.5 s of which is crypto → 75 % crypto share.
        assert crypto["crypto_mean"] == pytest.approx(1.5)
        assert crypto["crypto_p50"] == pytest.approx(1.5)
        assert crypto["crypto_share"] == pytest.approx(0.75)
        mock = rows["vectorized"]
        assert mock["crypto_mean"] is None
        assert mock["crypto_share"] is None

    def test_report_latency_renders_crypto_split(self, con, tmp_path, capsys):
        add_run(con, "job:c", job_id="c", plane="vectorized-crypto")
        add_run(con, "job:m", job_id="m", plane="vectorized")
        con.executemany(
            "INSERT INTO events (event_key, job_id, seq, ts, type, payload) "
            "VALUES (?, ?, ?, ?, 'iteration_completed', ?)",
            [(f"c:{i}", "c", i, 2.0 * i, '{"crypto_ms": 1500.0}')
             for i in range(5)]
            + [(f"m:{i}", "m", i, 1.0 * i, "{}") for i in range(5)],
        )
        con.commit()
        text = report_latency(con)
        crypto_line = next(
            line for line in text.splitlines()
            if line.startswith("vectorized-crypto")
        )
        assert "0.75" in crypto_line  # 1.5 s of every 2 s gap is crypto
        mock_line = next(
            line for line in text.splitlines()
            if line.startswith("vectorized ")
        )
        assert mock_line.rstrip().endswith("-")  # no crypto_ms → no share
        markdown = report_latency(con, fmt="markdown")
        assert markdown.splitlines()[0].startswith("| plane ")
        # the same table through `repro report latency`
        db = tmp_path / "cli.db"
        with connect(db) as disk:
            disk.executescript(
                "\n".join(
                    line for line in con.iterdump()
                    if line.startswith("INSERT")
                )
            )
        capsys.readouterr()
        assert main(["report", "latency", "--db", str(db)]) == 0
        assert "crypto-share" in capsys.readouterr().out

    def test_report_latency_empty_is_graceful(self, con):
        assert "no iteration events" in report_latency(con)

    def test_detector_counts_view(self, con):
        con.execute(
            "INSERT INTO detections (detection_key, run_key, fault, "
            "detector, count) VALUES "
            "('a', 'r1', 'byzantine', 'exchange-guard', 2), "
            "('b', 'r2', 'byzantine', 'exchange-guard', 3), "
            "('c', 'r1', 'collusion', 'coalition-audit', 1)"
        )
        con.commit()
        rows = detector_counts(con)
        assert [(r["fault"], r["detector"], r["detections"], r["runs"])
                for r in rows] == [
            ("byzantine", "exchange-guard", 5, 2),
            ("collusion", "coalition-audit", 1, 1),
        ]


class TestBenchTrajectory:
    def test_latest_point_with_delta_over_revs(self, con):
        con.executemany(
            "INSERT INTO bench_points (bench, git_rev, recorded_at, "
            "unix_time, metric, value) VALUES (?, ?, ?, ?, ?, ?)",
            [
                ("b", "rev1", "t1", 100.0, "speed", 10.0),
                ("b", "rev2", "t2", 200.0, "speed", 14.0),
                ("b", "rev3", "t3", 300.0, "speed", 12.0),
            ],
        )
        con.commit()
        rows = bench_trajectory(con, bench="b")
        assert len(rows) == 1
        row = rows[0]
        assert row["git_rev"] == "rev3"  # ordered by unix_time, not rev name
        assert row["value"] == 12.0
        assert row["prev_value"] == 14.0
        assert row["delta"] == -2.0
        assert row["points"] == 3

    def test_metric_like_filter(self, con):
        con.executemany(
            "INSERT INTO bench_points (bench, git_rev, recorded_at, "
            "unix_time, metric, value) VALUES (?, ?, ?, ?, ?, ?)",
            [
                ("b", "rev1", "t1", 1.0, "summary.speed", 1.0),
                ("b", "rev1", "t1", 1.0, "other", 2.0),
            ],
        )
        con.commit()
        rows = bench_trajectory(con, metric="summary.%")
        assert [r["metric"] for r in rows] == ["summary.speed"]


class TestStatsAndQuery:
    def test_stats_shape(self, con):
        add_run(con, "job:a", job_id="a", history=[1.0])
        payload = stats(con)
        assert payload["schema_version"] >= 2
        assert payload["tables"]["runs"] == 1
        assert payload["runs_by_source"] == {"job": 1}

    def test_run_query_rows(self, con):
        add_run(con, "job:a", history=[1.0, 2.0])
        rows = run_query(con, "SELECT COUNT(*) AS n FROM iterations")
        assert rows == [{"n": 2}]
