"""Shared builders for the warehouse test suite (imported via pytest's
test-dir sys.path insertion; named uniquely to avoid colliding with the service suite's _helpers module)."""

from __future__ import annotations

import json
import pathlib

from repro.api import (
    Experiment,
    RunCompleted,
    RunSpec,
    RunStarted,
    atomic_write_text,
    run_record,
)
from repro.service import EventBus, JobState, JobStore


def tiny_spec(seed: int = 0, name: str = "", plane: str = "quality",
              max_iterations: int = 2, n_series: int = 100,
              strategy: str = "G") -> RunSpec:
    """A sub-second spec for warehouse tests."""
    params = {"k": 3, "max_iterations": max_iterations, "epsilon": 50.0,
              "theta": 0.0}
    if plane == "vectorized":
        params["exchanges"] = 10
    return RunSpec.from_dict({
        "name": name or f"wh-test-{plane}-{seed}",
        "plane": plane,
        "seed": seed,
        "strategy": strategy,
        "dataset": {"kind": "cer",
                    "params": {"n_series": n_series,
                               "population_scale": 100}},
        "init": {"kind": "courbogen"},
        "params": params,
    })


def populate_job(store: JobStore, spec: RunSpec) -> str:
    """Run ``spec`` inline and lay down a completed job's full on-disk
    shape (job.json, events.ndjson with seq, result.json) — what a
    worker process would have produced, without the process."""
    job = store.submit(spec)
    store.claim(job)
    bus = EventBus(store, job.job_id)
    result = None
    environment = None
    for event in Experiment.from_spec(spec).run_iter():
        bus.publish(event)
        if isinstance(event, RunStarted):
            environment = {
                "crypto_backend": event.crypto_backend,
                "bigint_backend": event.bigint_backend,
                "key_bits": event.key_bits,
            }
        elif isinstance(event, RunCompleted):
            result = event.result
    record = run_record(spec, result, timings={"wall_seconds": 0.5},
                        environment=environment)
    atomic_write_text(store.result_path(job.job_id),
                      json.dumps(record, indent=2) + "\n")
    store.update(job.job_id, state=JobState.COMPLETED, finished_at=1.0)
    bus.publish_record({"type": "job_completed", "job": job.job_id,
                        "ts": 1.0, "wall_seconds": 0.5})
    return job.job_id


def bench_envelope(bench: str, git_rev: str, unix_time: float,
                   data: dict) -> dict:
    """A chiaroscuro-bench/v1 envelope with the provenance block."""
    timestamp = f"2026-08-{int(unix_time) % 28 + 1:02d}T00:00:00Z"
    return {
        "schema": "chiaroscuro-bench/v1",
        "bench": bench,
        "git_rev": git_rev,
        "python": "3.11",
        "timestamp": timestamp,
        "provenance": {
            "git_rev": git_rev,
            "git_rev_full": git_rev * 5,
            "timestamp": timestamp,
            "unix_time": unix_time,
        },
        "data": data,
    }


def write_json(path: pathlib.Path, payload: dict) -> pathlib.Path:
    path.write_text(json.dumps(payload, indent=2) + "\n")
    return path
