"""Warehouse schema: user_version migrations, read-only connections."""

from __future__ import annotations

import sqlite3

import pytest

from repro.warehouse import (
    MIGRATIONS,
    connect,
    connect_readonly,
    schema_version,
)


class TestMigrations:
    def test_fresh_db_reaches_current_version(self, tmp_path):
        con = connect(tmp_path / "wh.db")
        assert schema_version(con) == len(MIGRATIONS)
        con.close()

    def test_all_tables_and_views_exist(self, tmp_path):
        con = connect(tmp_path / "wh.db")
        names = {
            row[0]
            for row in con.execute(
                "SELECT name FROM sqlite_master WHERE type IN ('table', 'view')"
            )
        }
        for required in ("runs", "iterations", "events", "detections",
                         "jobs", "bench_points", "ingest_files",
                         "v_inertia_trajectories", "v_epsilon_spend",
                         "v_iteration_latency", "v_detector_counts",
                         "v_bench_trajectory"):
            assert required in names, required
        con.close()

    def test_partial_db_is_upgraded_in_place(self, tmp_path):
        """A warehouse built by an older release (migration 1 only) gains
        the newer views on the next connect — rows intact."""
        path = tmp_path / "wh.db"
        old = sqlite3.connect(path)
        old.executescript(MIGRATIONS[0])
        old.execute("PRAGMA user_version = 1")
        old.execute(
            "INSERT INTO runs (run_key, source) VALUES ('job:x', 'job')"
        )
        old.commit()
        old.close()

        con = connect(path)
        assert schema_version(con) == len(MIGRATIONS)
        assert con.execute("SELECT COUNT(*) FROM runs").fetchone()[0] == 1
        # Migration 2's views arrived without touching migration-1 rows.
        con.execute("SELECT * FROM v_detector_counts").fetchall()
        con.close()

    def test_migration_3_adds_crypto_ms_to_latency_view(self, tmp_path):
        """A migration-2 warehouse gains the crypto_ms view column in
        place; pre-existing events (no crypto_ms field) read back NULL."""
        path = tmp_path / "wh.db"
        old = sqlite3.connect(path)
        old.executescript(MIGRATIONS[0])
        old.executescript(MIGRATIONS[1])
        old.execute("PRAGMA user_version = 2")
        old.executemany(
            "INSERT INTO events (event_key, job_id, seq, ts, type, payload)"
            " VALUES (?, 'j', ?, ?, 'iteration_completed', ?)",
            [("j:1", 1, 1.0, "{}"),
             ("j:2", 2, 3.5, '{"crypto_ms": 2000.0}')],
        )
        old.commit()
        old.close()

        con = connect(path)
        assert schema_version(con) == len(MIGRATIONS)
        rows = con.execute(
            "SELECT seconds, crypto_ms FROM v_iteration_latency "
            "ORDER BY ts"
        ).fetchall()
        assert [tuple(row) for row in rows] == [(None, None), (2.5, 2000.0)]
        con.close()

    def test_future_version_refused(self, tmp_path):
        path = tmp_path / "wh.db"
        future = sqlite3.connect(path)
        future.execute(f"PRAGMA user_version = {len(MIGRATIONS) + 1}")
        future.commit()
        future.close()
        with pytest.raises(ValueError, match="refusing to write"):
            connect(path)

    def test_reconnect_is_a_noop(self, tmp_path):
        path = tmp_path / "wh.db"
        connect(path).close()
        con = connect(path)  # no "table already exists" explosion
        assert schema_version(con) == len(MIGRATIONS)
        con.close()


class TestReadonly:
    def test_refuses_writes(self, tmp_path):
        path = tmp_path / "wh.db"
        connect(path).close()
        con = connect_readonly(path)
        with pytest.raises(sqlite3.OperationalError):
            con.execute("INSERT INTO runs (run_key, source) VALUES ('a', 'b')")
        con.close()

    def test_missing_file_raises_instead_of_creating(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            connect_readonly(tmp_path / "absent.db")
        assert not (tmp_path / "absent.db").exists()
