"""Lint reports in the warehouse: migration 4, idempotent ingest, the
trajectory view and its report renderer."""

from __future__ import annotations

import json

import pytest

from repro.warehouse import (
    Ingester,
    connect,
    ingest_paths,
    report_lint,
    lint_trajectory,
)


@pytest.fixture()
def con(tmp_path):
    connection = connect(tmp_path / "wh.db")
    yield connection
    connection.close()


def lint_envelope(git_rev: str, timestamp: str, unix_time: float,
                  findings: list[dict]) -> dict:
    return {
        "schema": "chiaroscuro-lint/v1",
        "provenance": {
            "git_rev": git_rev,
            "timestamp": timestamp,
            "unix_time": unix_time,
        },
        "files": 10,
        "rules": ["determinism-rng"],
        "counts": {
            "new": sum(f["status"] == "new" for f in findings),
            "suppressed": sum(
                f["status"] == "suppressed" for f in findings
            ),
            "baselined": sum(f["status"] == "baselined" for f in findings),
        },
        "findings": findings,
    }


def finding(fingerprint: str, status: str = "new",
            rule: str = "determinism-rng") -> dict:
    return {
        "rule": rule,
        "path": "src/repro/core/x.py",
        "line": 7,
        "col": 0,
        "message": "unseeded rng",
        "snippet": "rng = default_rng()",
        "status": status,
        "justification": "waived" if status == "suppressed" else "",
        "fingerprint": fingerprint,
    }


def write_report(tmp_path, name: str, envelope: dict):
    path = tmp_path / name
    path.write_text(json.dumps(envelope))
    return path


class TestLintIngestion:
    def test_findings_land_with_statuses(self, con, tmp_path):
        path = write_report(
            tmp_path,
            "lint.json",
            lint_envelope("abc1234", "2026-08-07T10:00:00Z", 1e9, [
                finding("aa" * 8),
                finding("bb" * 8, status="suppressed"),
            ]),
        )
        delta = ingest_paths(con, [path])
        assert delta["lint_findings"] == 2
        statuses = {
            row[0]
            for row in con.execute("SELECT status FROM lint_findings")
        }
        assert statuses == {"new", "suppressed"}

    def test_double_ingest_is_a_noop(self, con, tmp_path):
        path = write_report(
            tmp_path,
            "lint.json",
            lint_envelope("abc1234", "2026-08-07T10:00:00Z", 1e9,
                          [finding("aa" * 8)]),
        )
        ingest_paths(con, [path])
        delta = ingest_paths(con, [path])
        assert all(count == 0 for count in delta.values()), delta

    def test_rescan_without_watermark_converges(self, con, tmp_path):
        path = write_report(
            tmp_path,
            "lint.json",
            lint_envelope("abc1234", "2026-08-07T10:00:00Z", 1e9,
                          [finding("aa" * 8)]),
        )
        ingest_paths(con, [path])
        con.execute("DELETE FROM ingest_files")
        delta = ingest_paths(con, [path])
        assert delta["lint_findings"] == 0

    def test_directory_scan_picks_up_lint_reports(self, con, tmp_path):
        write_report(
            tmp_path,
            "lint-findings.json",
            lint_envelope("abc1234", "2026-08-07T10:00:00Z", 1e9,
                          [finding("aa" * 8)]),
        )
        delta = ingest_paths(con, [tmp_path])
        assert delta["lint_findings"] == 1

    def test_non_lint_schema_rejected(self, con, tmp_path):
        path = tmp_path / "lint.json"
        path.write_text(json.dumps({"schema": "chiaroscuro-lint/v0"}))
        with pytest.raises(ValueError, match="unrecognized telemetry"):
            Ingester(con).ingest_path(path)


class TestLintTrajectory:
    def ingest_two_reports(self, con, tmp_path):
        first = lint_envelope("aaa1111", "2026-08-06T10:00:00Z", 1e9, [
            finding("11" * 8),
            finding("22" * 8),
            finding("33" * 8),
        ])
        second = lint_envelope("bbb2222", "2026-08-07T10:00:00Z", 1e9 + 60, [
            finding("11" * 8),
            finding("44" * 8, status="suppressed"),
        ])
        ingest_paths(con, [write_report(tmp_path, "first.json", first)])
        ingest_paths(con, [write_report(tmp_path, "second.json", second)])

    def test_latest_point_with_delta(self, con, tmp_path):
        self.ingest_two_reports(con, tmp_path)
        (row,) = lint_trajectory(con)
        assert row["rule"] == "determinism-rng"
        assert row["git_rev"] == "bbb2222"
        assert row["findings"] == 2
        assert row["new"] == 1
        assert row["suppressed"] == 1
        assert row["delta"] == -1  # 3 findings → 2
        assert row["points"] == 2

    def test_rule_filter(self, con, tmp_path):
        self.ingest_two_reports(con, tmp_path)
        assert lint_trajectory(con, rule="no-such-rule") == []

    def test_report_renders_table(self, con, tmp_path):
        self.ingest_two_reports(con, tmp_path)
        text = report_lint(con)
        assert "determinism-rng" in text
        assert "bbb2222" in text

    def test_report_empty_warehouse_hint(self, con):
        assert "no lint findings ingested" in report_lint(con)
