"""End-to-end shadow identity for the ``vectorized-crypto`` plane.

The plane's contract: every gossip exchange carries *real* packed
Damgård–Jurik ciphertexts, yet the decoded per-iteration centroids are
bit-identical to the mock ``vectorized`` plane at the same seed — the
crypto is a transparent substrate, not a source of drift.  On top of
that identity the plane must keep every capability the mock plane has:
checkpoint/resume, fault injection, backend/kernel neutrality, and the
``crypto_ms`` telemetry split.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import (
    CheckpointSaved,
    Experiment,
    IterationCompleted,
    PLANES,
    RunSpec,
)
from repro.api.spec import PROTOCOL_PLANES
from repro.crypto import bigint

GMPY2 = "gmpy2" in bigint.available_backends()
needs_gmpy2 = pytest.mark.skipif(
    not GMPY2, reason="gmpy2 not installed (python backend is the default)"
)


def crypto_spec(**overrides) -> RunSpec:
    """A small CER workload that completes 3 full iterations in <1 s."""
    d = {
        "plane": "vectorized-crypto",
        "seed": 5,
        "strategy": "UF3",
        "dataset": {"kind": "cer",
                    "params": {"n_series": 24, "population_scale": 1}},
        "init": {"kind": "courbogen"},
        "params": {"k": 3, "max_iterations": 3, "exchanges": 2,
                   "epsilon": 2000.0, "key_bits": 256, "theta": 0.0},
    }
    d.update(overrides)
    return RunSpec.from_dict(d)


def assert_bit_identical(a, b):
    assert a.iterations == b.iterations
    assert a.converged == b.converged
    assert np.array_equal(a.centroids, b.centroids)
    for x, y in zip(a.history, b.history):
        assert x.iteration == y.iteration
        assert x.pre_inertia == y.pre_inertia
        assert x.post_inertia == y.post_inertia
        assert x.n_centroids == y.n_centroids
        assert x.epsilon_spent == y.epsilon_spent
        assert np.array_equal(x.centroids, y.centroids)


class TestShadowIdentity:
    def test_decoded_centroids_match_mock_plane(self):
        """The headline identity: real ciphertexts in, the mock plane's
        exact floats out — every iteration, every centroid coordinate."""
        spec = crypto_spec()
        real = Experiment.from_spec(spec).run()
        mock = Experiment.from_spec(spec.with_plane("vectorized")).run()
        assert real.iterations == 3
        assert_bit_identical(real, mock)

    def test_identity_holds_under_churn(self):
        spec = crypto_spec(churn=0.2, seed=9)
        real = Experiment.from_spec(spec).run()
        mock = Experiment.from_spec(spec.with_plane("vectorized")).run()
        assert real.iterations >= 1
        assert_bit_identical(real, mock)

    def test_process_pool_backend_is_bit_identical(self):
        """Worker count is a speed knob, not a semantics knob."""
        serial = Experiment.from_spec(crypto_spec()).run()
        pooled_spec = crypto_spec(
            params={"k": 3, "max_iterations": 3, "exchanges": 2,
                    "epsilon": 2000.0, "key_bits": 256, "theta": 0.0,
                    "crypto_backend": "process", "backend_workers": 2},
        )
        pooled = Experiment.from_spec(pooled_spec).run()
        assert_bit_identical(pooled, serial)

    @needs_gmpy2
    def test_bigint_kernels_are_bit_identical(self):
        """python and gmpy2 arithmetic produce the same decoded run."""
        def run_with(kernel):
            spec = crypto_spec(
                params={"k": 3, "max_iterations": 3, "exchanges": 2,
                        "epsilon": 2000.0, "key_bits": 256, "theta": 0.0,
                        "bigint_backend": kernel},
            )
            return Experiment.from_spec(spec).run()

        assert_bit_identical(run_with("python"), run_with("gmpy2"))


class TestTelemetry:
    def test_crypto_ms_reported_per_iteration(self):
        events = [
            e for e in Experiment.from_spec(crypto_spec()).run_iter()
            if isinstance(e, IterationCompleted)
        ]
        assert len(events) == 3
        assert all(e.crypto_ms is not None and e.crypto_ms > 0 for e in events)

    def test_mock_plane_reports_no_crypto_ms(self):
        spec = crypto_spec().with_plane("vectorized")
        events = [
            e for e in Experiment.from_spec(spec).run_iter()
            if isinstance(e, IterationCompleted)
        ]
        assert events
        assert all(e.crypto_ms is None for e in events)


class TestCheckpointResume:
    @pytest.mark.parametrize("kill_after", [1, 2])
    def test_kill_and_resume_bit_identical(self, tmp_path, kill_after):
        spec = crypto_spec()
        uninterrupted = Experiment.from_spec(spec).run()
        assert uninterrupted.iterations == 3

        directory = str(tmp_path / f"kill-{kill_after}")
        saved = 0
        for event in Experiment.from_spec(spec).run_iter(
            checkpoint_dir=directory
        ):
            if isinstance(event, CheckpointSaved):
                saved += 1
                if saved >= kill_after:
                    break  # the "kill": generator simply dropped

        resumed = Experiment.from_spec(spec).run(checkpoint_dir=directory)
        assert_bit_identical(resumed, uninterrupted)


class TestPlaneWiring:
    def test_registered_as_a_protocol_plane(self):
        assert "vectorized-crypto" in PLANES
        assert "vectorized-crypto" in PROTOCOL_PLANES
        plane = PLANES.get("vectorized-crypto")
        assert plane.supports_checkpoint
        assert plane.uses_real_crypto

    def test_with_plane_pivot_reconciles_params(self):
        spec = crypto_spec().with_plane("vectorized")
        assert spec.params.protocol_plane == "vectorized"
        back = spec.with_plane("vectorized-crypto")
        assert back.params.protocol_plane == "vectorized-crypto"
        assert back == crypto_spec()

    def test_faults_accepted_and_run(self):
        """The fault plane drives the crypto plane like any protocol
        plane; an injected network fault changes the decoded output."""
        clean = Experiment.from_spec(crypto_spec()).run()
        faulty_spec = crypto_spec(
            faults=[{"kind": "network", "params": {"loss": 0.1}}],
        )
        faulty = Experiment.from_spec(faulty_spec).run()
        assert faulty.iterations >= 1
        assert not np.array_equal(faulty.centroids, clean.centroids)
