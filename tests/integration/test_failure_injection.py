"""Failure-injection tests: the system under adversity.

Chiaroscuro's operating environment is hostile by construction — churn,
stragglers, and (Sec. 4.4) participants that deviate.  These tests inject
the failures and assert the designed behaviour: graceful degradation,
detection, or a hard refusal, never a silently-wrong answer.
"""

import random

import numpy as np
import pytest

from repro.core import DecryptionCrossCheck, DeviceRegistry
from repro.crypto import (
    FixedPointCodec,
    combine_partial_decryptions,
    encrypt,
    partial_decrypt,
)
from repro.gossip import (
    EESum,
    EpidemicDecryption,
    EpidemicSum,
    GossipEngine,
    MinIdDissemination,
)


class TestExtremeChurn:
    def test_sum_survives_90_percent_churn(self):
        """At 90 % per-cycle churn the sum still converges, just slower."""
        engine = GossipEngine(100, seed=0, churn=0.9)
        protocol = EpidemicSum({i: np.array([1.0]) for i in range(100)})
        engine.setup(protocol)
        engine.run_cycles(400, protocol)
        estimates = [protocol.estimate(n) for n in engine.nodes]
        have = [e[0] for e in estimates if e is not None]
        assert len(have) > 50
        assert np.median(np.abs(np.array(have) - 100.0)) < 1.0

    def test_dissemination_heals_after_total_outage(self):
        """Cycles where fewer than two nodes are online are lost, not fatal."""
        proposals = {i: (i + 1, i) for i in range(10)}
        engine = GossipEngine(10, seed=1, churn=0.95)
        protocol = MinIdDissemination(proposals)
        engine.setup(protocol)
        engine.run_cycles(50, protocol)
        engine.churn = 0.0  # network heals
        engine.run_cycles(10, protocol)
        assert protocol.converged(engine.nodes)


class TestTamperedParticipants:
    def test_cross_check_catches_tampered_decryption(self, threshold_keypair):
        """A participant reporting a manipulated plaintext is flagged by the
        Sec. 4.4 epidemic cross-check."""
        tk = threshold_keypair
        rng = random.Random(2)
        c = encrypt(tk.public, 5_000_000, rng=rng)
        honest = {}
        for node in range(8):
            partials = {
                s.index: partial_decrypt(tk.context, s, c) for s in tk.shares[:3]
            }
            honest[node] = np.array(
                [float(combine_partial_decryptions(tk.context, partials))]
            )
        honest[3] = honest[3] * 1.02  # subtle manipulation (+2 %)
        report = DecryptionCrossCheck(relative_tolerance=1e-3).check(honest)
        assert report.deviating == [3]

    def test_forged_partial_decryption_breaks_loudly(self, threshold_keypair):
        """Corrupting one partial decryption never yields the true plaintext
        (it yields garbage — detectable by the cross-check, never a silent
        off-by-a-bit)."""
        tk = threshold_keypair
        rng = random.Random(3)
        value = 123_456
        c = encrypt(tk.public, value, rng=rng)
        partials = {
            s.index: partial_decrypt(tk.context, s, c) for s in tk.shares[:3]
        }
        forged = dict(partials)
        first = sorted(forged)[0]
        forged[first] = forged[first] * 7 % tk.public.n_s1
        result = combine_partial_decryptions(tk.context, forged)
        assert result != value

    def test_unenrolled_device_never_gets_a_slot(self):
        registry = DeviceRegistry(secret=b"k")
        with pytest.raises(PermissionError):
            registry.enroll(99, "not-a-token")
        assert not registry.is_authorized(99)


class TestMalformedProtocolInputs:
    def test_eesum_rejects_vector_length_mismatch(self, keypair128):
        rng = random.Random(4)
        pub = keypair128.public
        initial = {
            0: [encrypt(pub, 1, rng=rng)],
            1: [encrypt(pub, 1, rng=rng), encrypt(pub, 2, rng=rng)],
        }
        engine = GossipEngine(2, seed=4)
        protocol = EESum(pub, initial)
        engine.setup(protocol)
        with pytest.raises(ValueError):
            protocol.exchange(engine.nodes[0], engine.nodes[1], rng)

    def test_decryption_stalls_without_enough_distinct_shares(self, threshold_keypair):
        """If the population holds fewer distinct key-shares than τ, the
        epidemic decryption never falsely reports completion."""
        tk = threshold_keypair
        rng = random.Random(5)
        c = encrypt(tk.public, 9, rng=rng)
        bundles = {i: ([c], 1) for i in range(6)}
        # Everyone holds the *same* two shares — below τ = 3 distinct.
        shares = {i: tk.shares[i % 2] for i in range(6)}
        engine = GossipEngine(6, seed=5)
        protocol = EpidemicDecryption(tk.context, bundles, shares)
        engine.setup(protocol)
        engine.run_cycles(30, protocol)
        assert not protocol.all_done(engine.nodes)
        with pytest.raises(RuntimeError):
            protocol.plaintexts_of(engine.nodes[0])

    def test_codec_capacity_guard_trips_before_overflow(self, keypair128):
        """The protocol refuses configurations whose EESum scaling could
        silently wrap the plaintext space."""
        codec = FixedPointCodec(keypair128.public, fractional_bits=40)
        with pytest.raises(ValueError):
            codec.check_capacity(
                max_abs_value=1e6, population=10**7, exchanges=220
            )
