"""Information-flow audit — the executable shape of the Theorem 2 proof.

The proof of security enumerates every data structure communicated during
the computation step and checks each is (1) semantically-securely encrypted,
(2) differentially-private, or (3) independent of the input series and the
noise.  These tests walk the actual protocol structures and enforce that
trichotomy mechanically.
"""

import random

import numpy as np
import pytest

from repro.core import ChiaroscuroParams, Diptych, NoisePlan, Participant
from repro.core.noise import encrypt_share_vector
from repro.crypto import FixedPointCodec, decrypt
from repro.gossip import EESum, GossipEngine


class TestDiptychTrichotomy:
    def test_every_exported_field_classified(self):
        diptych = Diptych(centroids=np.zeros((2, 3)))
        classes = diptych.exported_fields()
        assert set(classes.values()) <= {"dp", "encrypted", "independent"}
        # Nothing cleartext-and-data-dependent may appear.
        assert "series" not in classes


class TestCiphertextIndistinguishability:
    def test_assigned_and_unassigned_slots_look_alike(self, keypair128):
        """An observer of the encrypted means must not tell which cluster a
        participant's series went to: ciphertext *sizes* and value ranges
        are identical across slots (semantic security provides the rest —
        the scheme is probabilistic, tested in crypto/)."""
        codec = FixedPointCodec(keypair128.public, fractional_bits=16)
        participant = Participant(
            node_id=0, series=np.array([42.0, 17.0]),
            public=keypair128.public, codec=codec,
        )
        rng = random.Random(0)
        vector = participant.encrypted_means_vector(np.zeros((3, 2)), rng)
        n_s1 = keypair128.public.n_s1
        assert all(0 < c < n_s1 for c in vector)
        # Re-encrypting yields entirely different ciphertexts (probabilistic).
        vector2 = participant.encrypted_means_vector(np.zeros((3, 2)), rng)
        assert all(a != b for a, b in zip(vector, vector2))

    def test_noise_shares_travel_encrypted(self, keypair128):
        codec = FixedPointCodec(keypair128.public, fractional_bits=16)
        plan = NoisePlan(k=2, series_length=3, dmin=0, dmax=10, epsilon=1.0, n_nu=10)
        share = plan.draw_share(np.random.default_rng(0))
        ciphertexts = encrypt_share_vector(
            keypair128.public, codec, share, random.Random(1)
        )
        # What goes on the wire is the ciphertext, never the share itself.
        assert all(isinstance(c, int) for c in ciphertexts)
        decoded = np.array([codec.decode(decrypt(keypair128, c)) for c in ciphertexts])
        assert np.allclose(decoded, share, atol=1e-4)


class TestExchangeSurface:
    def test_eesum_state_exposes_only_safe_fields(self, keypair128):
        """The EESum exchange surface is: ciphertexts (encrypted), ω and the
        exchange counter (data-independent).  Nothing else exists in the
        state object."""
        codec = FixedPointCodec(keypair128.public, fractional_bits=16)
        rng = random.Random(2)
        from repro.crypto import encrypt

        initial = {
            i: [encrypt(keypair128.public, codec.encode(float(i)), rng=rng)]
            for i in range(4)
        }
        engine = GossipEngine(4, seed=2)
        protocol = EESum(keypair128.public, initial)
        engine.setup(protocol)
        state = protocol.state_of(engine.nodes[0])
        assert set(state.__slots__) == {"ciphertexts", "omega", "count"}

    def test_omega_is_data_independent(self, keypair128):
        """ω depends only on the exchange schedule, never on series values."""
        codec = FixedPointCodec(keypair128.public, fractional_bits=16)
        from repro.crypto import encrypt

        omegas = []
        for payload in (1.0, 999.0):
            rng = random.Random(3)
            initial = {
                i: [encrypt(keypair128.public, codec.encode(payload), rng=rng)]
                for i in range(6)
            }
            engine = GossipEngine(6, seed=3)
            protocol = EESum(keypair128.public, initial)
            engine.setup(protocol)
            engine.run_cycles(5, protocol)
            omegas.append([protocol.state_of(n).omega for n in engine.nodes])
        assert omegas[0] == omegas[1]


class TestCollusionBoundary:
    def test_below_threshold_cannot_decrypt(self, threshold_keypair):
        """τ−1 partial decryptions yield nothing (combination refuses)."""
        from repro.crypto import combine_partial_decryptions, encrypt, partial_decrypt

        tk = threshold_keypair
        c = encrypt(tk.public, 123456, rng=random.Random(4))
        partials = {
            s.index: partial_decrypt(tk.context, s, c)
            for s in tk.shares[: tk.context.threshold - 1]
        }
        with pytest.raises(ValueError):
            combine_partial_decryptions(tk.context, partials)
