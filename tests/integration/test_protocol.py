"""End-to-end integration tests of the full distributed execution sequence
(Algorithm 1) with real threshold cryptography over the gossip engine."""

import numpy as np
import pytest

from repro.core import ChiaroscuroParams, ChiaroscuroRun
from repro.privacy import Greedy, UniformFast


@pytest.fixture(scope="module")
def toy_params():
    return ChiaroscuroParams(
        k=3,
        max_iterations=3,
        exchanges=20,
        tau_fraction=0.13,  # τ = 3 of 24
        epsilon=1e6,
        expansion_s=2,
        use_smoothing=False,
        theta=0.0,
    )


@pytest.fixture(scope="module")
def near_exact_run(toy_dataset, toy_initial_centroids, toy_params, threshold_keypair_s2):
    """One shared protocol execution with negligible noise (huge ε)."""
    run = ChiaroscuroRun(
        toy_dataset,
        UniformFast(1e6, 3),
        toy_params,
        toy_initial_centroids,
        key_bits=256,
        seed=3,
        keypair=threshold_keypair_s2,
    )
    return run.run()


class TestCorrectness:
    """Theorem 1: the protocol terminates and outputs at least one centroid."""

    def test_terminates_with_centroids(self, near_exact_run):
        result, _ = near_exact_run
        assert result.iterations >= 1
        assert len(result.centroids) >= 1

    def test_recovers_true_cluster_means(self, near_exact_run, toy_dataset):
        """With negligible noise, the decrypted means equal the true means."""
        result, _ = near_exact_run
        values = toy_dataset.values
        true_means = np.array(
            [values[0:8].mean(axis=0), values[8:16].mean(axis=0), values[16:24].mean(axis=0)]
        )
        final = result.centroids
        assert len(final) == 3
        for mean in true_means:
            closest = np.min(np.linalg.norm(final - mean, axis=1))
            assert closest < 0.5

    def test_nodes_agree(self, near_exact_run):
        """All participants converge to (numerically) the same aggregates."""
        _, trace = near_exact_run
        assert all(a < 1e-3 for a in trace.agreement)

    def test_exchange_accounting(self, near_exact_run, toy_params):
        _, trace = near_exact_run
        for per_node in trace.exchanges_per_node:
            assert per_node >= toy_params.exchanges  # at least the EESum cycles


class TestPerturbedRun:
    def test_noise_actually_perturbs(
        self, toy_dataset, toy_initial_centroids, threshold_keypair_s2
    ):
        """With a realistic ε on 24 nodes the DP noise must dominate —
        the protocol stays correct (terminates, outputs centroids) while
        the output visibly deviates from the true means."""
        params = ChiaroscuroParams(
            k=3, max_iterations=2, exchanges=15, tau_fraction=0.13,
            epsilon=5.0, expansion_s=2, use_smoothing=False, theta=0.0,
        )
        run = ChiaroscuroRun(
            toy_dataset, Greedy(5.0), params, toy_initial_centroids,
            key_bits=256, seed=11, keypair=threshold_keypair_s2,
        )
        result, _ = run.run()
        assert result.iterations >= 1
        assert len(result.centroids) >= 1
        values = toy_dataset.values
        true_means = np.array(
            [values[0:8].mean(axis=0), values[8:16].mean(axis=0), values[16:24].mean(axis=0)]
        )
        first = result.history[0].centroids
        deviation = min(
            np.linalg.norm(first - m, axis=1).min() for m in true_means
        )
        assert deviation > 0.01  # the perturbation is real

    def test_churned_run_still_terminates(
        self, toy_dataset, toy_initial_centroids, toy_params, threshold_keypair_s2
    ):
        run = ChiaroscuroRun(
            toy_dataset, UniformFast(1e6, 2),
            ChiaroscuroParams(
                k=3, max_iterations=2, exchanges=25, tau_fraction=0.13,
                epsilon=1e6, expansion_s=2, use_smoothing=False, theta=0.0,
            ),
            toy_initial_centroids, key_bits=256, seed=5,
            keypair=threshold_keypair_s2,
        )
        result, _ = run.run(churn=0.2)
        assert result.iterations >= 1
        assert len(result.centroids) >= 1
