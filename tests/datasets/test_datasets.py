"""Tests for the dataset generators and the TimeSeriesSet container."""

import numpy as np
import pytest

from repro.datasets import (
    TimeSeriesSet,
    courbogen_like_centroids,
    generate_a3_like,
    generate_cer,
    generate_numed,
    generate_points2d,
)


class TestTimeSeriesSet:
    def test_shape_metadata(self, toy_dataset):
        assert toy_dataset.t == 24
        assert toy_dataset.n == 6
        assert toy_dataset.population == 24

    def test_sensitivities(self, toy_dataset):
        assert toy_dataset.sum_sensitivity == 6 * 60
        assert toy_dataset.joint_sensitivity == 6 * 60 + 1

    def test_population_scale(self):
        ds = TimeSeriesSet(np.zeros((10, 4)), 0.0, 1.0, population_scale=100)
        assert ds.population == 1000

    def test_range_enforced(self):
        with pytest.raises(ValueError, match="outside the declared range"):
            TimeSeriesSet(np.full((2, 2), 5.0), 0.0, 1.0)

    def test_must_be_matrix(self):
        with pytest.raises(ValueError):
            TimeSeriesSet(np.zeros(5), 0.0, 1.0)

    def test_subsample(self, toy_dataset):
        sub = toy_dataset.subsample(0.5, np.random.default_rng(0))
        assert 0 < sub.t <= 24
        assert sub.n == 6

    def test_subsample_never_empty(self, toy_dataset):
        sub = toy_dataset.subsample(0.01, np.random.default_rng(1))
        assert sub.t >= 1


class TestCER:
    def test_paper_shape(self):
        data = generate_cer(n_series=500, seed=0)
        assert data.n == 24
        assert data.dmin == 0.0 and data.dmax == 80.0
        assert data.sum_sensitivity == 1920.0  # the paper's number

    def test_default_effective_population(self):
        data = generate_cer(n_series=300, population_scale=100, seed=0)
        assert data.population == 30_000

    def test_concentrated_mixture(self):
        """CER-like data is strongly concentrated: a few archetypes dominate."""
        data = generate_cer(n_series=3000, seed=1)
        # Correlation of each series with the most popular archetype shape
        # splits the data into a dominant group.
        flat = data.values - data.values.mean(axis=1, keepdims=True)
        norms = np.linalg.norm(flat, axis=1)
        lead = flat[0] / norms[0]
        corr = flat @ lead / np.maximum(norms, 1e-9)
        assert (corr > 0.8).mean() > 0.15  # a sizable aligned cohort exists

    def test_deterministic_seed(self):
        a = generate_cer(n_series=100, seed=42)
        b = generate_cer(n_series=100, seed=42)
        assert np.array_equal(a.values, b.values)

    def test_courbogen_centroids(self):
        centroids = courbogen_like_centroids(50, np.random.default_rng(2))
        assert centroids.shape == (50, 24)
        assert centroids.min() >= 0.0 and centroids.max() <= 80.0

    def test_courbogen_not_copies_of_data(self):
        data = generate_cer(n_series=200, seed=3)
        centroids = courbogen_like_centroids(10, np.random.default_rng(3))
        for c in centroids:
            assert not any(np.allclose(c, s) for s in data.values)


class TestNUMED:
    def test_paper_shape(self):
        data = generate_numed(n_series=500, seed=0)
        assert data.n == 20
        assert data.dmin == 0.0 and data.dmax == 50.0
        assert data.sum_sensitivity == 1000.0  # the paper's number

    def test_default_effective_population(self):
        data = generate_numed(n_series=240, population_scale=50, seed=0)
        assert data.population == 12_000

    def test_near_uniform_archetypes(self):
        """NUMED clusters are equally distributed (the paper's explanation
        for SMA having little effect)."""
        data = generate_numed(n_series=4000, seed=1)
        # Split by gross shape: responders end lower than they start.
        start, end = data.values[:, 0], data.values[:, -1]
        shrinking = (end < start * 0.7).mean()
        assert 0.2 < shrinking < 0.8  # no archetype dominates

    def test_values_in_range(self):
        data = generate_numed(n_series=1000, seed=2)
        assert data.values.min() >= 0.0 and data.values.max() <= 50.0


class TestPoints2D:
    def test_a3_base(self):
        points, centers = generate_a3_like(n_clusters=50, points_per_cluster=150, seed=0)
        assert points.shape == (7500, 2)
        assert centers.shape == (50, 2)

    def test_duplication_construction(self):
        data = generate_points2d(
            n_clusters=10, points_per_cluster=30, duplications=5, seed=1
        )
        assert data.t == 10 * 30 * 5
        assert data.n == 2

    def test_clusters_preserved_by_jitter(self):
        """Duplicated points stay near their source (jitter is small)."""
        base, _ = generate_a3_like(n_clusters=10, points_per_cluster=30, seed=2)
        data = generate_points2d(
            n_clusters=10, points_per_cluster=30, duplications=5, jitter=4.0, seed=2
        )
        copies = data.values.reshape(len(base), 5, 2)
        drift = np.abs(copies - base[:, None, :]).max()
        assert drift <= 4.0 + 1e-9
