"""Tests for the local cost / bandwidth model."""

import random

import pytest

from repro.analysis import CostSample, LocalCostModel, means_set_bytes, measure_crypto_costs
from repro.crypto import generate_threshold_keypair


class TestBandwidthModel:
    def test_means_set_bytes_formula(self, keypair128):
        pub = keypair128.public
        assert means_set_bytes(pub, k=50, series_length=20) == 50 * 21 * pub.ciphertext_bytes

    def test_paper_order_of_magnitude_at_1024_bits(self):
        """Table 2 setting: 50 means × 20 measures, 1024-bit key → a hundred-
        odd kB per transfer (the paper reports ~125-145 kB)."""
        from repro.crypto.keys import PublicKey

        pub = PublicKey(n=(1 << 1023) + 1, s=1)  # size stand-in only
        size_kb = means_set_bytes(pub, 50, 20) / 1024
        assert 150 <= size_kb <= 350  # same order; exact value depends on
        # whether counts and both ciphertext halves are included — see
        # EXPERIMENTS.md

    def test_cost_model_linearity(self, keypair128):
        small = LocalCostModel(keypair128.public, k=10, series_length=20)
        large = LocalCostModel(keypair128.public, k=20, series_length=20)
        assert large.transfer_bytes == 2 * small.transfer_bytes

    def test_exchange_and_decryption_multiples(self, keypair128):
        model = LocalCostModel(keypair128.public, k=5, series_length=8)
        assert model.exchange_bytes() == 2 * model.transfer_bytes
        assert model.decryption_exchange_bytes() == 4 * model.transfer_bytes

    def test_transfer_seconds(self, keypair128):
        model = LocalCostModel(keypair128.public, k=5, series_length=8)
        assert model.transfer_seconds(1e6) == pytest.approx(
            model.transfer_bytes * 8 / 1e6
        )


class TestMeasurement:
    def test_measure_crypto_costs_structure(self):
        keypair = generate_threshold_keypair(
            128, n_shares=5, threshold=2, rng=random.Random(0)
        )
        costs = measure_crypto_costs(keypair, k=3, series_length=4, repetitions=2)
        assert set(costs) == {"encrypt", "add", "decrypt"}
        for sample in costs.values():
            assert 0 <= sample.minimum <= sample.average <= sample.maximum

    def test_add_cheapest_decrypt_most_expensive(self):
        """The Fig. 5(a) ordering: add ≪ encrypt < decrypt."""
        keypair = generate_threshold_keypair(
            128, n_shares=5, threshold=3, rng=random.Random(1)
        )
        costs = measure_crypto_costs(keypair, k=5, series_length=6, repetitions=2)
        assert costs["add"].average < costs["encrypt"].average
        assert costs["add"].average < costs["decrypt"].average

    def test_cost_sample_from_times(self):
        sample = CostSample.from_times([1.0, 3.0, 2.0])
        assert sample.minimum == 1.0
        assert sample.maximum == 3.0
        assert sample.average == pytest.approx(2.0)
