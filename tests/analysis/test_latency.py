"""Tests for the Sec. 6.3.2 latency composition."""

import pytest

from repro.analysis import IterationLatency, LatencyInputs, LocalCostModel, iteration_latency
from repro.crypto.keys import PublicKey


@pytest.fixture()
def model_1024():
    return LocalCostModel(PublicKey(n=(1 << 1023) + 1, s=1), k=50, series_length=20)


@pytest.fixture()
def paper_inputs():
    """Order-of-magnitude inputs from the paper's own measurements."""
    return LatencyInputs(
        sum_messages_per_node=100.0,
        dissemination_messages_per_node=50.0,
        decryption_messages_per_node=100.0,
        encrypt_seconds=2.0,
        add_seconds=0.08,
        decrypt_seconds=8.0,
        bandwidth_bits_per_s=1e6,
    )


class TestComposition:
    def test_message_total(self, model_1024, paper_inputs):
        latency = iteration_latency(model_1024, paper_inputs)
        # 2 sums + 1 dissemination + 1 decryption
        assert latency.messages_per_node == pytest.approx(2 * 100 + 50 + 100)

    def test_paper_narrative_shape(self, model_1024, paper_inputs):
        """First iteration tens of minutes; a 60 %-lost fifth iteration is
        substantially cheaper (the paper: ~26 min → ~10 min)."""
        first = iteration_latency(model_1024, paper_inputs, alive_fraction=1.0)
        fifth = iteration_latency(model_1024, paper_inputs, alive_fraction=0.4)
        assert 5 <= first.total_minutes <= 120
        assert fifth.total_seconds == pytest.approx(first.total_seconds * 0.4, rel=1e-6)

    def test_components_positive(self, model_1024, paper_inputs):
        latency = iteration_latency(model_1024, paper_inputs)
        assert latency.transfer_seconds > 0
        assert latency.compute_seconds > 0
        assert latency.total_seconds == pytest.approx(
            latency.transfer_seconds + latency.compute_seconds
        )

    def test_alive_fraction_validation(self, model_1024, paper_inputs):
        with pytest.raises(ValueError):
            iteration_latency(model_1024, paper_inputs, alive_fraction=0.0)
