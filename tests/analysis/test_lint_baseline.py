"""Baseline round-trip and the content-based fingerprint contract."""

from __future__ import annotations

import json
import pathlib

import pytest

from repro.analysis.lint import (
    load_baseline,
    run_lint,
    write_baseline,
)
from repro.analysis.lint.baseline import BASELINE_SCHEMA

FIXTURES = pathlib.Path(__file__).resolve().parent / "fixtures"
BAD_RNG = FIXTURES / "determinism" / "bad_rng.py"


class TestFingerprints:
    def test_stable_across_line_shifts(self, tmp_path):
        source = BAD_RNG.read_text()
        original = tmp_path / "v1.py"
        original.write_text(source)
        before = run_lint([original], rules=["determinism-rng"])

        shifted = tmp_path / "v1.py"
        lines = source.splitlines()
        # Insert blank lines after the docstring: every finding moves,
        # no flagged line changes.
        shifted.write_text(
            "\n".join(lines[:3] + ["", "", ""] + lines[3:]) + "\n"
        )
        after = run_lint([shifted], rules=["determinism-rng"])

        assert [f.fingerprint for f in before.findings] == [
            f.fingerprint for f in after.findings
        ]
        assert [f.line for f in before.findings] != [
            f.line for f in after.findings
        ]

    def test_identical_lines_get_distinct_fingerprints(self, tmp_path):
        path = tmp_path / "twins.py"
        path.write_text(
            "# repro-lint-fixture: package=repro.core.example\n"
            "import numpy as np\n"
            "a = np.random.default_rng()\n"
            "b = np.random.default_rng()\n"
        )
        report = run_lint([path], rules=["determinism-rng"])
        prints = [f.fingerprint for f in report.findings]
        assert len(prints) == 2
        assert len(set(prints)) == 2


class TestBaselineRoundTrip:
    def test_write_then_match_silences_findings(self, tmp_path):
        baseline_path = tmp_path / "baseline.json"
        first = run_lint([BAD_RNG], rules=["determinism-rng"])
        count = write_baseline(baseline_path, first.findings)
        assert count == len(first.new)

        baseline = load_baseline(baseline_path)
        second = run_lint(
            [BAD_RNG], rules=["determinism-rng"], baseline=baseline
        )
        assert second.new == []
        assert len(second.baselined) == count
        assert second.exit_code == 0

    def test_baseline_file_shape(self, tmp_path):
        baseline_path = tmp_path / "baseline.json"
        report = run_lint([BAD_RNG], rules=["determinism-rng"])
        write_baseline(baseline_path, report.findings)
        payload = json.loads(baseline_path.read_text())
        assert payload["schema"] == BASELINE_SCHEMA
        for entry in payload["findings"]:
            assert entry["fingerprint"]
            assert entry["rule"] == "determinism-rng"

    def test_missing_baseline_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_baseline(tmp_path / "absent.json")

    def test_wrong_schema_raises(self, tmp_path):
        path = tmp_path / "wrong.json"
        path.write_text('{"schema": "something-else/v9", "findings": []}')
        with pytest.raises(ValueError, match="not a"):
            load_baseline(path)

    def test_invalid_json_raises(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{nope")
        with pytest.raises(ValueError, match="not valid JSON"):
            load_baseline(path)

    def test_suppressed_findings_stay_out_of_baseline(self, tmp_path):
        baseline_path = tmp_path / "baseline.json"
        report = run_lint(
            [FIXTURES / "suppression" / "good_suppression.py"],
            rules=["determinism-rng"],
        )
        assert write_baseline(baseline_path, report.findings) == 0
