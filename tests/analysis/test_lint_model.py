"""The shared single-parse module model: packages, aliases, suppressions."""

from __future__ import annotations

import pathlib
import textwrap

import pytest

from repro.analysis.lint.model import Module, Project

REPO = pathlib.Path(__file__).resolve().parents[2]
FIXTURES = pathlib.Path(__file__).resolve().parent / "fixtures"


def parse(tmp_path, source: str, name: str = "mod.py") -> Module:
    path = tmp_path / name
    path.write_text(textwrap.dedent(source))
    return Module.parse(path)


class TestPackageInference:
    def test_real_tree_module_gets_dotted_path(self):
        module = Module.parse(REPO / "src" / "repro" / "crypto" / "bigint.py")
        assert module.package == "repro.crypto.bigint"

    def test_package_init_drops_the_stem(self):
        module = Module.parse(
            REPO / "src" / "repro" / "crypto" / "__init__.py"
        )
        assert module.package == "repro.crypto"

    def test_fixture_directive_overrides(self):
        module = Module.parse(FIXTURES / "determinism" / "bad_rng.py")
        assert module.package == "repro.core.example"

    def test_loose_file_has_no_package(self, tmp_path):
        assert parse(tmp_path, "x = 1").package == ""


class TestAliases:
    def test_import_as(self, tmp_path):
        module = parse(tmp_path, "import numpy as np")
        assert module.aliases["np"] == "numpy"

    def test_from_import(self, tmp_path):
        module = parse(tmp_path, "from datetime import datetime")
        assert module.aliases["datetime"] == "datetime.datetime"

    def test_from_import_as_maps_to_real_target(self, tmp_path):
        module = parse(tmp_path, "from time import time as now")
        assert module.aliases["now"] == "time.time"

    def test_resolve_call_through_alias(self, tmp_path):
        module = parse(
            tmp_path,
            """\
            import numpy as np
            r = np.random.default_rng()
            """,
        )
        import ast

        call = next(
            node for node in ast.walk(module.tree)
            if isinstance(node, ast.Call)
        )
        assert module.resolve_call(call.func) == "numpy.random.default_rng"


class TestRelativeImports:
    def test_level_one_resolves_against_parent(self, tmp_path):
        source = (
            "# repro-lint-fixture: package=repro.faults.storm\n"
            "from ..gossip.churn import BurstChurnProcess\n"
        )
        module = parse(tmp_path, source)
        (record,) = module.imports
        assert record.module == "repro.gossip.churn"
        assert "repro.gossip.churn.BurstChurnProcess" in record.targets

    def test_type_checking_imports_are_marked(self, tmp_path):
        module = parse(
            tmp_path,
            """\
            from typing import TYPE_CHECKING
            if TYPE_CHECKING:
                import heavy
            import light
            """,
        )
        by_module = {r.module: r.type_checking for r in module.imports}
        assert by_module["heavy"] is True
        assert by_module["light"] is False


class TestSuppressions:
    def test_trailing_comment_covers_its_line(self, tmp_path):
        module = parse(
            tmp_path,
            "x = risky()  # repro-lint: allow=my-rule -- because reasons\n",
        )
        (suppression,) = module.suppressions[1]
        assert suppression.rules == ("my-rule",)
        assert suppression.justification == "because reasons"

    def test_standalone_comment_covers_next_line(self, tmp_path):
        module = parse(
            tmp_path,
            """\
            # repro-lint: allow=rule-a,rule-b -- shared waiver
            x = risky()
            """,
        )
        (suppression,) = module.suppressions[2]
        assert suppression.rules == ("rule-a", "rule-b")

    def test_missing_justification_is_malformed(self, tmp_path):
        module = parse(tmp_path, "x = 1  # repro-lint: allow=my-rule\n")
        assert module.suppressions == {}
        assert module.bad_suppressions[0][0] == 1


class TestProjectLoad:
    def test_missing_path_raises(self):
        with pytest.raises(FileNotFoundError):
            Project.load([pathlib.Path("definitely/not/here")])

    def test_duplicate_paths_parse_once(self, tmp_path):
        path = tmp_path / "m.py"
        path.write_text("x = 1")
        project = Project.load([path, path, tmp_path])
        assert len(project.modules) == 1

    def test_by_package_indexes_fixture_packages(self):
        project = Project.load([FIXTURES / "determinism" / "bad_rng.py"])
        assert "repro.core.example" in project.by_package
