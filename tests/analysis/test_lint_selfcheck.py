"""The tree must satisfy its own invariants: ``repro lint src/`` is clean.

This is the enforcement test behind the CI lint job — if a change to
``src/repro`` introduces an unseeded RNG, an upward import, a wire-form
drift or an unjustified waiver, this fails locally before CI does.
"""

from __future__ import annotations

import json
import pathlib

from repro.analysis.lint import load_baseline, run_lint

REPO = pathlib.Path(__file__).resolve().parents[2]
SRC = REPO / "src" / "repro"
BASELINE = REPO / "lint-baseline.json"


def test_src_tree_lints_clean():
    baseline = load_baseline(BASELINE) if BASELINE.exists() else None
    report = run_lint([SRC], baseline=baseline)
    assert report.new == [], "\n".join(
        f"{f.path}:{f.line}: {f.rule}: {f.message}" for f in report.new
    )


def test_determinism_and_bigint_baselines_are_empty():
    """Policy: the ratchet rules carry no baselined debt — violations are
    fixed or justified inline, never parked."""
    payload = json.loads(BASELINE.read_text())
    parked = [
        entry["rule"]
        for entry in payload["findings"]
        if entry["rule"] in (
            "determinism-rng", "determinism-wall-clock", "bigint-purity"
        )
    ]
    assert parked == []


def test_every_inline_suppression_is_justified():
    report = run_lint([SRC])
    assert all(f.justification for f in report.suppressed)
