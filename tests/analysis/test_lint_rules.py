"""Fixture-driven per-rule tests: every rule fires on its bad fixture and
stays silent on the good one."""

from __future__ import annotations

import pathlib

import pytest

from repro.analysis.lint import RULES, run_lint

FIXTURES = pathlib.Path(__file__).resolve().parent / "fixtures"

#: (rule, bad fixture, expected finding count, good fixtures)
CASES = [
    (
        "determinism-rng",
        FIXTURES / "determinism" / "bad_rng.py",
        3,
        [
            FIXTURES / "determinism" / "good_rng.py",
            FIXTURES / "determinism" / "good_rng_out_of_scope.py",
        ],
    ),
    (
        "determinism-wall-clock",
        FIXTURES / "determinism" / "bad_clock.py",
        2,
        [FIXTURES / "determinism" / "good_clock.py"],
    ),
    (
        "bigint-purity",
        FIXTURES / "bigint" / "bad_pow.py",
        2,
        [
            FIXTURES / "bigint" / "good_pow.py",
            FIXTURES / "bigint" / "good_kernel.py",
        ],
    ),
    (
        "layering-dag",
        FIXTURES / "layering" / "bad_upward.py",
        2,
        [FIXTURES / "layering" / "good_downward.py"],
    ),
    (
        "fault-seams",
        FIXTURES / "layering" / "bad_seams.py",
        1,
        [FIXTURES / "layering" / "good_seams.py"],
    ),
    (
        "event-wire-sync",
        FIXTURES / "events" / "bad_events.py",
        2,
        [FIXTURES / "events" / "good_events.py"],
    ),
    (
        "registry-hygiene",
        FIXTURES / "hygiene" / "bad_hygiene.py",
        2,
        [FIXTURES / "hygiene" / "good_hygiene.py"],
    ),
    (
        "epsilon-accounting",
        FIXTURES / "epsilon" / "bad_epsilon.py",
        2,
        [FIXTURES / "epsilon" / "good_epsilon.py"],
    ),
]


@pytest.mark.parametrize(
    "rule,bad,expected,goods", CASES, ids=[c[0] for c in CASES]
)
class TestRuleFixtures:
    def test_bad_fixture_fires(self, rule, bad, expected, goods):
        report = run_lint([bad], rules=[rule])
        assert len(report.new) == expected, [
            f.message for f in report.findings
        ]
        assert all(f.rule == rule for f in report.new)

    def test_good_fixtures_stay_silent(self, rule, bad, expected, goods):
        report = run_lint(goods, rules=[rule])
        assert report.new == [], [f.message for f in report.new]


class TestSuppressionFlow:
    def test_justified_suppressions_downgrade_findings(self):
        report = run_lint(
            [FIXTURES / "suppression" / "good_suppression.py"],
            rules=["determinism-rng"],
        )
        assert report.new == []
        assert len(report.suppressed) == 2
        assert all(f.justification for f in report.suppressed)

    def test_unjustified_suppression_reported_and_inert(self):
        report = run_lint(
            [FIXTURES / "suppression" / "bad_suppression.py"],
            rules=["determinism-rng"],
        )
        rules_found = sorted(f.rule for f in report.new)
        # The RNG finding survives AND the bad comment itself is flagged.
        assert rules_found == ["determinism-rng", "suppression"]


class TestRegistry:
    def test_all_eight_rules_registered(self):
        assert len(RULES) == 8

    def test_every_rule_has_a_description(self):
        for key in RULES:
            assert RULES.get(key).description, key

    def test_unknown_rule_raises_with_catalogue(self):
        with pytest.raises(KeyError, match="determinism-rng"):
            RULES.get("nope")

    def test_rule_subset_runs_only_selected(self):
        report = run_lint(
            [FIXTURES / "determinism" / "bad_rng.py"],
            rules=["determinism-wall-clock"],
        )
        assert report.new == []
