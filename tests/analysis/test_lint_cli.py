"""The ``repro lint`` command: exit codes, formats, baseline flags."""

from __future__ import annotations

import io
import json
import pathlib

from repro.cli import main

FIXTURES = pathlib.Path(__file__).resolve().parent / "fixtures"
BAD_RNG = str(FIXTURES / "determinism" / "bad_rng.py")
GOOD_RNG = str(FIXTURES / "determinism" / "good_rng.py")


class TestExitCodes:
    def test_clean_tree_exits_zero(self):
        out = io.StringIO()
        assert main(["lint", GOOD_RNG], out=out) == 0
        assert "0 new" in out.getvalue()

    def test_findings_exit_one(self):
        out = io.StringIO()
        assert main(["lint", BAD_RNG], out=out) == 1
        assert "determinism-rng" in out.getvalue()

    def test_missing_path_exits_two_with_usage(self):
        out = io.StringIO()
        assert main(["lint", "no/such/dir"], out=out) == 2
        text = out.getvalue()
        assert "error:" in text
        assert "usage: repro lint" in text

    def test_unknown_rule_exits_two(self):
        out = io.StringIO()
        assert main(["lint", GOOD_RNG, "--rules", "bogus"], out=out) == 2
        assert "unknown lint rule" in out.getvalue()

    def test_explicit_missing_baseline_exits_two(self, tmp_path):
        out = io.StringIO()
        code = main(
            ["lint", GOOD_RNG, "--baseline", str(tmp_path / "nope.json")],
            out=out,
        )
        assert code == 2
        assert "no baseline file" in out.getvalue()


class TestFormats:
    def test_list_rules(self):
        out = io.StringIO()
        assert main(["lint", "--list-rules"], out=out) == 0
        text = out.getvalue()
        for key in ("determinism-rng", "bigint-purity", "layering-dag"):
            assert key in text

    def test_json_envelope(self):
        out = io.StringIO()
        assert main(["lint", BAD_RNG, "--format", "json"], out=out) == 1
        payload = json.loads(out.getvalue())
        assert payload["schema"] == "chiaroscuro-lint/v1"
        assert payload["counts"]["new"] == 3
        assert {"git_rev", "timestamp", "unix_time"} <= set(
            payload["provenance"]
        )
        for finding in payload["findings"]:
            assert finding["fingerprint"]
            assert finding["status"] == "new"

    def test_rules_filter(self):
        out = io.StringIO()
        code = main(
            ["lint", BAD_RNG, "--rules", "determinism-wall-clock"], out=out
        )
        assert code == 0


class TestBaselineFlags:
    def test_write_baseline_then_clean(self, tmp_path):
        baseline = tmp_path / "baseline.json"
        out = io.StringIO()
        code = main(
            ["lint", BAD_RNG, "--write-baseline",
             "--baseline", str(baseline)],
            out=out,
        )
        assert code == 0
        assert baseline.exists()

        out = io.StringIO()
        code = main(
            ["lint", BAD_RNG, "--baseline", str(baseline)], out=out
        )
        assert code == 0
        assert "3 baselined" in out.getvalue()

    def test_no_baseline_reopens_findings(self, tmp_path):
        baseline = tmp_path / "baseline.json"
        main(
            ["lint", BAD_RNG, "--write-baseline",
             "--baseline", str(baseline)],
            out=io.StringIO(),
        )
        out = io.StringIO()
        code = main(
            ["lint", BAD_RNG, "--baseline", str(baseline), "--no-baseline"],
            out=out,
        )
        assert code == 1
