# repro-lint-fixture: package=repro.api.example_builtins
"""Registered components missing a docstring / frozen=True (both flagged)."""

from dataclasses import dataclass

from repro.api.registry import register_dataset
from repro.faults.base import register_fault


@register_dataset("mystery")
def _make_mystery(params):
    return params


@register_fault("mutable")
@dataclass
class MutableFault:
    """Documented, but mutable — registered config must be frozen."""

    rate: float = 0.5
