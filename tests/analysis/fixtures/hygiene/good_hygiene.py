# repro-lint-fixture: package=repro.api.example_builtins
"""Registered components documented and frozen; helpers stay unchecked."""

from dataclasses import dataclass

from repro.api.registry import register_dataset
from repro.faults.base import register_fault


@register_dataset("documented")
def _make_documented(params):
    """A documented synthetic workload."""
    return params


@register_fault("frozen")
@dataclass(frozen=True)
class FrozenFault:
    """A frozen, documented fault config."""

    rate: float = 0.5


def _plain_helper(x):
    return x
