# repro-lint-fixture: package=repro.core.example
"""Both suppression spellings: trailing comment and standalone line."""

import numpy as np


def sample():
    rng = np.random.default_rng()  # repro-lint: allow=determinism-rng -- fixture demonstrating a justified waiver
    # repro-lint: allow=determinism-rng -- standalone comment covers the next line
    other = np.random.default_rng()
    return rng.random(), other.random()
