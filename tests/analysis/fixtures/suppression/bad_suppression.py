# repro-lint-fixture: package=repro.core.example
"""A suppression with no justification: reported, and suppresses nothing."""

import numpy as np


def sample():
    # repro-lint: allow=determinism-rng
    return np.random.default_rng().random()
