# repro-lint-fixture: package=repro.core.example
"""Noise drawn with no budget flow in sight (both draws flagged)."""


def perturb(values, rng, scale):
    noisy = values + rng.laplace(0.0, scale, size=values.shape)
    spread = rng.gamma(2.0, scale)
    return noisy, spread
