# repro-lint-fixture: package=repro.core.example
"""Noise drawn under the accountant's eye — and math.gamma is not noise."""

import math

from repro.privacy.accountant import PrivacyAccountant


def perturb(values, rng, accountant: PrivacyAccountant, iteration: int):
    epsilon = accountant.epsilon_for(iteration)
    return values + rng.laplace(0.0, 1.0 / epsilon, size=values.shape)


def lanczos(x):
    return math.gamma(x)
