# repro-lint-fixture: package=repro.core.example
"""Protocol code pulling ambient entropy (every line here is a violation)."""

import random

import numpy as np


def sample():
    rng = np.random.default_rng()
    fallback = random.Random()
    return rng.normal(), fallback.random(), random.random()
