# repro-lint-fixture: package=repro.gossip.example
"""Duration-only clocks are allowed in protocol code."""

import time


def measure(fn):
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start
