# repro-lint-fixture: package=repro.core.example
"""Protocol code with properly injected, seeded randomness."""

import random

import numpy as np


def sample(seed: int, rng=None):
    rng = rng if rng is not None else np.random.default_rng(seed)
    local = random.Random(seed)
    return rng.normal(), local.random()
