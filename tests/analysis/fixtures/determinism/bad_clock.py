# repro-lint-fixture: package=repro.gossip.example
"""Protocol code reading the wall clock (both calls are violations)."""

import time
from datetime import datetime


def stamp():
    return time.time(), datetime.now()
