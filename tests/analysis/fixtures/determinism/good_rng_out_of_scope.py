# repro-lint-fixture: package=repro.service.example
"""Orchestration code may use ambient entropy (out of rule scope)."""

import numpy as np


def jitter():
    return np.random.default_rng().random()
