# repro-lint-fixture: package=repro.faults.example
"""A fault using only the documented seams (plus downward imports)."""

from repro.core.verification import DeviceRegistry
from repro.crypto import bigint
from repro.gossip.engine import GossipEngine


def wrap(engine: GossipEngine):
    return DeviceRegistry, bigint, engine
