# repro-lint-fixture: package=repro.faults.example
"""A fault reaching protocol internals past the documented seams."""

from repro.gossip.eesum import EESum


def forge():
    return EESum
