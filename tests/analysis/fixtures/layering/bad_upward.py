# repro-lint-fixture: package=repro.core.example
"""A foundation module importing orchestration (both imports violate)."""

from repro.service.runner import Scheduler
from repro.warehouse import connect


def run():
    return Scheduler, connect
