# repro-lint-fixture: package=repro.core.example
"""Foundation importing sideways/down, with a TYPE_CHECKING exemption."""

from typing import TYPE_CHECKING

from repro.crypto import bigint
from repro.privacy.accountant import PrivacyAccountant

if TYPE_CHECKING:
    from repro.api.events import RunStarted


def run() -> "RunStarted":
    return bigint, PrivacyAccountant
