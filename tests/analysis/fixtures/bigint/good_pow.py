# repro-lint-fixture: package=repro.gossip.example
"""Modular arithmetic routed through the kernel; two-arg pow is fine."""

from repro.crypto import bigint


def modexp(base, exponent, modulus):
    return bigint.powmod(base, exponent, modulus)


def square(x):
    return pow(x, 2)
