# repro-lint-fixture: package=repro.crypto.bigint
"""Inside the kernel itself, three-arg pow and gmpy2 are the point."""

import gmpy2


def powmod(base, exponent, modulus):
    assert gmpy2
    return pow(base, exponent, modulus)
