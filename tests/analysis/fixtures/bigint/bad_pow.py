# repro-lint-fixture: package=repro.gossip.example
"""Modular arithmetic bypassing the bigint kernel (two violations)."""

import gmpy2


def modexp(base, exponent, modulus):
    assert gmpy2  # pretend we use it
    return pow(base, exponent, modulus)
