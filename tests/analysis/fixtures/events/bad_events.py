# repro-lint-fixture: package=repro.api.example_events
"""Wire drift: one member unhandled, one field never serialized."""

from dataclasses import dataclass
from typing import Union


@dataclass(frozen=True)
class Started:
    """Run start marker."""

    label: str
    seed: int  # <- never reaches the wire form


@dataclass(frozen=True)
class Finished:
    """Run end marker — no isinstance branch below."""

    reason: str


RunEvent = Union[Started, Finished]


def event_to_dict(event: RunEvent) -> dict:
    if isinstance(event, Started):
        return {"type": "started", "label": event.label}
    raise TypeError(type(event).__name__)
