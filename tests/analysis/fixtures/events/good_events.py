# repro-lint-fixture: package=repro.api.example_events
"""Every member handled, every field on the wire."""

from dataclasses import dataclass
from typing import Union


@dataclass(frozen=True)
class Started:
    """Run start marker."""

    label: str
    seed: int


@dataclass(frozen=True)
class Finished:
    """Run end marker."""

    reason: str


RunEvent = Union[Started, Finished]


def event_to_dict(event: RunEvent) -> dict:
    if isinstance(event, Started):
        return {"type": "started", "label": event.label, "seed": event.seed}
    if isinstance(event, Finished):
        return {"type": "finished", "reason": event.reason}
    raise TypeError(type(event).__name__)
