"""Tests for the command-line interface."""

import io
import json

import pytest

from repro import __version__
from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_cluster_defaults(self):
        args = build_parser().parse_args(["cluster"])
        assert args.dataset == "cer"
        assert args.strategy == "G"
        assert args.epsilon == 0.69
        assert args.plane is None
        assert args.spec is None

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["--version"])
        assert exc.value.code == 0
        assert f"repro {__version__}" in capsys.readouterr().out

    def test_no_args_prints_help_and_exits_2(self):
        out = io.StringIO()
        code = main([], out=out)
        assert code == 2
        text = out.getvalue()
        assert "usage: repro" in text
        assert "cluster" in text and "plan" in text and "costs" in text


class TestCommands:
    def test_plan_reproduces_paper_numbers(self):
        out = io.StringIO()
        code = main(
            [
                "plan", "--delta", "0.995", "--e-max", "1e-12",
                "--population", "1000000", "--iterations", "10", "--length", "24",
            ],
            out=out,
        )
        text = out.getvalue()
        assert code == 0
        assert "n_e = 47" in text
        assert "480-th root" in text

    def test_costs_sheet(self):
        out = io.StringIO()
        code = main(["costs", "--key-bits", "256", "--k", "5", "--length", "8"], out=out)
        text = out.getvalue()
        assert code == 0
        assert "means set" in text
        assert "kB" in text

    def test_cluster_small_run(self):
        out = io.StringIO()
        code = main(
            [
                "cluster", "--dataset", "cer", "--series", "1500", "--scale", "200",
                "--k", "8", "--strategy", "UF3", "--iterations", "5", "--seed", "1",
            ],
            out=out,
        )
        text = out.getvalue()
        assert code == 0
        assert "strategy=UF3_SMA" in text
        assert "best iteration:" in text
        # UF3 stops at its bound even though 5 iterations were requested.
        assert text.count("\n") < 20

    def test_cluster_numed_no_smoothing(self):
        out = io.StringIO()
        code = main(
            [
                "cluster", "--dataset", "numed", "--series", "1200", "--scale", "100",
                "--k", "6", "--strategy", "G", "--iterations", "3",
                "--no-smoothing", "--seed", "2",
            ],
            out=out,
        )
        assert code == 0
        assert "strategy=G " in out.getvalue() or "strategy=G\n" in out.getvalue()


class TestSpecDrivenRuns:
    def _write_spec(self, tmp_path, plane="quality"):
        from repro.api import RunSpec

        spec = RunSpec.from_dict({
            "plane": plane,
            "seed": 5,
            "strategy": "UF2",
            "dataset": {"kind": "cer",
                        "params": {"n_series": 300, "population_scale": 100}},
            "init": {"kind": "courbogen"},
            "params": {"k": 4, "max_iterations": 3, "epsilon": 0.69,
                       "theta": 0.0, "key_bits": 256},
        })
        path = tmp_path / "spec.json"
        spec.save(path)
        return path

    def test_cluster_from_spec_file(self, tmp_path):
        out = io.StringIO()
        code = main(["cluster", "--spec", str(self._write_spec(tmp_path))], out=out)
        text = out.getvalue()
        assert code == 0
        assert "strategy=UF2_SMA" in text
        assert "plane=quality" in text

    def test_cluster_spec_plane_override(self, tmp_path):
        out = io.StringIO()
        code = main(
            ["cluster", "--spec", str(self._write_spec(tmp_path)),
             "--plane", "vectorized"],
            out=out,
        )
        text = out.getvalue()
        assert code == 0
        assert "plane=vectorized" in text
        assert "exch/node" in text

    def test_cluster_checkpoint_and_json_out(self, tmp_path):
        spec_path = self._write_spec(tmp_path)
        ckpt_dir = tmp_path / "ckpt"
        json_out = tmp_path / "result.json"
        out = io.StringIO()
        code = main(
            ["cluster", "--spec", str(spec_path),
             "--checkpoint-dir", str(ckpt_dir), "--json-out", str(json_out)],
            out=out,
        )
        assert code == 0
        checkpoints = sorted(ckpt_dir.glob("checkpoint_*.json"))
        assert len(checkpoints) == 2  # UF2 bound

        record = json.loads(json_out.read_text())
        assert record["schema"] == "chiaroscuro-run/v1"
        assert record["spec"]["strategy"] == "UF2"
        assert len(record["result"]["history"]) == 2
        assert record["timings"]["wall_seconds"] > 0

        # Running again resumes (nothing left to do) and reports the
        # checkpointed history unchanged.
        out2 = io.StringIO()
        code = main(
            ["cluster", "--spec", str(spec_path),
             "--checkpoint-dir", str(ckpt_dir)],
            out=out2,
        )
        assert code == 0
        assert "resuming after iteration 2" in out2.getvalue()

    def test_checkpoint_spec_mismatch_is_a_clean_error(self, tmp_path):
        spec_path = self._write_spec(tmp_path)
        ckpt_dir = tmp_path / "ckpt"
        assert main(
            ["cluster", "--spec", str(spec_path),
             "--checkpoint-dir", str(ckpt_dir)],
            out=io.StringIO(),
        ) == 0
        # Same checkpoint dir, different experiment: refusal message +
        # exit code 2, not a traceback.
        out = io.StringIO()
        code = main(
            ["cluster", "--spec", str(spec_path), "--plane", "vectorized",
             "--checkpoint-dir", str(ckpt_dir)],
            out=out,
        )
        assert code == 2
        assert "error:" in out.getvalue()
        assert "different spec" in out.getvalue()


class TestServiceCommands:
    """The service surface: submit → serve --drain → jobs → tail."""

    def _batch_file(self, tmp_path, n=3):
        from repro.api import RunSpec

        specs = []
        for seed in range(n):
            specs.append(RunSpec.from_dict({
                "name": f"cli-batch-{seed}",
                "plane": "quality",
                "seed": seed,
                "strategy": "G",
                "dataset": {"kind": "cer",
                            "params": {"n_series": 100,
                                       "population_scale": 100}},
                "init": {"kind": "courbogen"},
                "params": {"k": 3, "max_iterations": 2, "epsilon": 50.0,
                           "theta": 0.0},
            }).to_dict())
        path = tmp_path / "batch.json"
        path.write_text(json.dumps(specs))
        return path

    def test_submit_serve_jobs_tail_round_trip(self, tmp_path):
        root = str(tmp_path / "root")
        batch = self._batch_file(tmp_path)

        out = io.StringIO()
        assert main(["submit", str(batch), "--root", root], out=out) == 0
        assert "3 job(s) submitted" in out.getvalue()

        out = io.StringIO()
        code = main(["serve", "--root", root, "--max-workers", "2",
                     "--poll", "0.05", "--drain", "--timeout", "300"], out=out)
        assert code == 0
        assert "drained: 3 completed, 0 failed" in out.getvalue()

        out = io.StringIO()
        assert main(["jobs", "--root", root], out=out) == 0
        listing = out.getvalue()
        assert listing.count("completed") == 3

        out = io.StringIO()
        assert main(["jobs", "--root", root, "--json"], out=out) == 0
        payload = json.loads(out.getvalue())
        assert [job["state"] for job in payload] == ["completed"] * 3
        job_id = payload[0]["job_id"]

        out = io.StringIO()
        assert main(["tail", "--root", root], out=out) == 0
        feed = out.getvalue()
        assert "run_started" in feed and "job_completed" in feed

        out = io.StringIO()
        assert main(["tail", "--root", root, job_id, "--raw"], out=out) == 0
        records = [json.loads(line) for line in
                   out.getvalue().strip().splitlines()]
        assert {r["job"] for r in records} == {job_id}
        assert records[-1]["type"] == "job_completed"

    def test_submit_rejects_malformed_spec(self, tmp_path):
        root = str(tmp_path / "root")
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"plane": "quality"}))  # no dataset block
        out = io.StringIO()
        assert main(["submit", str(bad), "--root", root], out=out) == 2
        assert "error:" in out.getvalue()

    def test_submit_multiple_files_is_all_or_nothing(self, tmp_path):
        """A malformed second file must not leave the first file's jobs
        durably enqueued (a retry would double-submit them)."""
        from repro.service import JobStore

        root = str(tmp_path / "root")
        good = self._batch_file(tmp_path)
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"plane": "quality"}))
        out = io.StringIO()
        assert main(["submit", str(good), str(bad), "--root", root],
                    out=out) == 2
        assert JobStore(root).jobs() == []

    def test_serve_drain_ignores_historically_failed_jobs(self, tmp_path):
        """A job that failed terminally in a previous session must not
        make every later drain exit 1."""
        from repro.service import JobState, JobStore

        root = str(tmp_path / "root")
        store = JobStore(root)
        batch = self._batch_file(tmp_path, n=1)
        assert main(["submit", str(batch), "--root", root],
                    out=io.StringIO()) == 0
        old = store.jobs()[0]
        store.update(old.job_id, state=JobState.FAILED, error="old wreck")

        assert main(["submit", str(batch), "--root", root],
                    out=io.StringIO()) == 0
        out = io.StringIO()
        code = main(["serve", "--root", root, "--max-workers", "1",
                     "--poll", "0.05", "--drain", "--timeout", "300"],
                    out=out)
        assert code == 0
        assert "drained: 1 completed, 0 failed" in out.getvalue()
        assert store.get(old.job_id).state == JobState.FAILED  # untouched

    def test_submit_rejects_malformed_budget_label(self, tmp_path):
        """The satellite bugfix, through the CLI path: a bad UF label is a
        clean usage error, not an int() traceback."""
        root = str(tmp_path / "root")
        bad = tmp_path / "bad.json"
        spec = json.loads(self._batch_file(tmp_path).read_text())[0]
        spec["strategy"] = "UFx"
        spec["params"]["budget_strategy"] = "UFx"
        bad.write_text(json.dumps([spec]))
        out = io.StringIO()
        assert main(["submit", str(bad), "--root", root], out=out) == 2
        assert "unknown budget strategy" in out.getvalue()

    def test_tail_unknown_job_is_clean_error(self, tmp_path):
        root = str(tmp_path / "root")
        out = io.StringIO()
        assert main(["tail", "--root", root, "nope"], out=out) == 2
        assert "unknown job" in out.getvalue()

    def test_tail_renders_foreign_records_without_crashing(self, tmp_path):
        """A feed line of a known type but missing numeric fields (e.g.
        written by another version) must not abort the tail."""
        root = str(tmp_path / "root")
        from repro.service import JobStore, append_ndjson

        store = JobStore(root)
        append_ndjson(store.feed_path,
                      {"type": "iteration_completed", "job": "j1"})
        append_ndjson(store.feed_path,
                      {"type": "job_completed", "job": "j1",
                       "wall_seconds": 1.0})
        out = io.StringIO()
        assert main(["tail", "--root", root], out=out) == 0
        lines = out.getvalue().strip().splitlines()
        assert len(lines) == 2
        assert "iteration_completed" in lines[0]

    def test_serve_timeout_requires_drain(self, tmp_path):
        out = io.StringIO()
        code = main(["serve", "--root", str(tmp_path / "root"),
                     "--timeout", "5"], out=out)
        assert code == 2
        assert "--drain" in out.getvalue()

    def test_cluster_rejects_malformed_budget_label(self):
        out = io.StringIO()
        code = main(
            ["cluster", "--dataset", "cer", "--series", "100",
             "--strategy", "UFx", "--iterations", "2"],
            out=out,
        )
        assert code == 2
        assert "error:" in out.getvalue()
