"""Tests for the command-line interface."""

import io
import json

import pytest

from repro import __version__
from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_cluster_defaults(self):
        args = build_parser().parse_args(["cluster"])
        assert args.dataset == "cer"
        assert args.strategy == "G"
        assert args.epsilon == 0.69
        assert args.plane is None
        assert args.spec is None

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["--version"])
        assert exc.value.code == 0
        assert f"repro {__version__}" in capsys.readouterr().out

    def test_no_args_prints_help_and_exits_2(self):
        out = io.StringIO()
        code = main([], out=out)
        assert code == 2
        text = out.getvalue()
        assert "usage: repro" in text
        assert "cluster" in text and "plan" in text and "costs" in text


class TestCommands:
    def test_plan_reproduces_paper_numbers(self):
        out = io.StringIO()
        code = main(
            [
                "plan", "--delta", "0.995", "--e-max", "1e-12",
                "--population", "1000000", "--iterations", "10", "--length", "24",
            ],
            out=out,
        )
        text = out.getvalue()
        assert code == 0
        assert "n_e = 47" in text
        assert "480-th root" in text

    def test_costs_sheet(self):
        out = io.StringIO()
        code = main(["costs", "--key-bits", "256", "--k", "5", "--length", "8"], out=out)
        text = out.getvalue()
        assert code == 0
        assert "means set" in text
        assert "kB" in text

    def test_cluster_small_run(self):
        out = io.StringIO()
        code = main(
            [
                "cluster", "--dataset", "cer", "--series", "1500", "--scale", "200",
                "--k", "8", "--strategy", "UF3", "--iterations", "5", "--seed", "1",
            ],
            out=out,
        )
        text = out.getvalue()
        assert code == 0
        assert "strategy=UF3_SMA" in text
        assert "best iteration:" in text
        # UF3 stops at its bound even though 5 iterations were requested.
        assert text.count("\n") < 20

    def test_cluster_numed_no_smoothing(self):
        out = io.StringIO()
        code = main(
            [
                "cluster", "--dataset", "numed", "--series", "1200", "--scale", "100",
                "--k", "6", "--strategy", "G", "--iterations", "3",
                "--no-smoothing", "--seed", "2",
            ],
            out=out,
        )
        assert code == 0
        assert "strategy=G " in out.getvalue() or "strategy=G\n" in out.getvalue()


class TestSpecDrivenRuns:
    def _write_spec(self, tmp_path, plane="quality"):
        from repro.api import RunSpec

        spec = RunSpec.from_dict({
            "plane": plane,
            "seed": 5,
            "strategy": "UF2",
            "dataset": {"kind": "cer",
                        "params": {"n_series": 300, "population_scale": 100}},
            "init": {"kind": "courbogen"},
            "params": {"k": 4, "max_iterations": 3, "epsilon": 0.69,
                       "theta": 0.0, "key_bits": 256},
        })
        path = tmp_path / "spec.json"
        spec.save(path)
        return path

    def test_cluster_from_spec_file(self, tmp_path):
        out = io.StringIO()
        code = main(["cluster", "--spec", str(self._write_spec(tmp_path))], out=out)
        text = out.getvalue()
        assert code == 0
        assert "strategy=UF2_SMA" in text
        assert "plane=quality" in text

    def test_cluster_spec_plane_override(self, tmp_path):
        out = io.StringIO()
        code = main(
            ["cluster", "--spec", str(self._write_spec(tmp_path)),
             "--plane", "vectorized"],
            out=out,
        )
        text = out.getvalue()
        assert code == 0
        assert "plane=vectorized" in text
        assert "exch/node" in text

    def test_cluster_checkpoint_and_json_out(self, tmp_path):
        spec_path = self._write_spec(tmp_path)
        ckpt_dir = tmp_path / "ckpt"
        json_out = tmp_path / "result.json"
        out = io.StringIO()
        code = main(
            ["cluster", "--spec", str(spec_path),
             "--checkpoint-dir", str(ckpt_dir), "--json-out", str(json_out)],
            out=out,
        )
        assert code == 0
        checkpoints = sorted(ckpt_dir.glob("checkpoint_*.json"))
        assert len(checkpoints) == 2  # UF2 bound

        record = json.loads(json_out.read_text())
        assert record["schema"] == "chiaroscuro-run/v1"
        assert record["spec"]["strategy"] == "UF2"
        assert len(record["result"]["history"]) == 2
        assert record["timings"]["wall_seconds"] > 0

        # Running again resumes (nothing left to do) and reports the
        # checkpointed history unchanged.
        out2 = io.StringIO()
        code = main(
            ["cluster", "--spec", str(spec_path),
             "--checkpoint-dir", str(ckpt_dir)],
            out=out2,
        )
        assert code == 0
        assert "resuming after iteration 2" in out2.getvalue()

    def test_checkpoint_spec_mismatch_is_a_clean_error(self, tmp_path):
        spec_path = self._write_spec(tmp_path)
        ckpt_dir = tmp_path / "ckpt"
        assert main(
            ["cluster", "--spec", str(spec_path),
             "--checkpoint-dir", str(ckpt_dir)],
            out=io.StringIO(),
        ) == 0
        # Same checkpoint dir, different experiment: refusal message +
        # exit code 2, not a traceback.
        out = io.StringIO()
        code = main(
            ["cluster", "--spec", str(spec_path), "--plane", "vectorized",
             "--checkpoint-dir", str(ckpt_dir)],
            out=out,
        )
        assert code == 2
        assert "error:" in out.getvalue()
        assert "different spec" in out.getvalue()
