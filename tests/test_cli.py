"""Tests for the command-line interface."""

import io

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_cluster_defaults(self):
        args = build_parser().parse_args(["cluster"])
        assert args.dataset == "cer"
        assert args.strategy == "G"
        assert args.epsilon == 0.69

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])


class TestCommands:
    def test_plan_reproduces_paper_numbers(self):
        out = io.StringIO()
        code = main(
            [
                "plan", "--delta", "0.995", "--e-max", "1e-12",
                "--population", "1000000", "--iterations", "10", "--length", "24",
            ],
            out=out,
        )
        text = out.getvalue()
        assert code == 0
        assert "n_e = 47" in text
        assert "480-th root" in text

    def test_costs_sheet(self):
        out = io.StringIO()
        code = main(["costs", "--key-bits", "256", "--k", "5", "--length", "8"], out=out)
        text = out.getvalue()
        assert code == 0
        assert "means set" in text
        assert "kB" in text

    def test_cluster_small_run(self):
        out = io.StringIO()
        code = main(
            [
                "cluster", "--dataset", "cer", "--series", "1500", "--scale", "200",
                "--k", "8", "--strategy", "UF3", "--iterations", "5", "--seed", "1",
            ],
            out=out,
        )
        text = out.getvalue()
        assert code == 0
        assert "strategy=UF3_SMA" in text
        assert "best iteration:" in text
        # UF3 stops at its bound even though 5 iterations were requested.
        assert text.count("\n") < 20

    def test_cluster_numed_no_smoothing(self):
        out = io.StringIO()
        code = main(
            [
                "cluster", "--dataset", "numed", "--series", "1200", "--scale", "100",
                "--k", "6", "--strategy", "G", "--iterations", "3",
                "--no-smoothing", "--seed", "2",
            ],
            out=out,
        )
        assert code == 0
        assert "strategy=G " in out.getvalue() or "strategy=G\n" in out.getvalue()
