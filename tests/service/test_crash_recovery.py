"""The service's flagship guarantee: SIGKILL the whole server process
group mid-iteration, restart it, and every job still completes with a
result bit-identical to the same spec run uninterrupted inline.

This is the subsystem acceptance test, so it uses the real deployment
surface — ``python -m repro serve`` as a subprocess in its own process
group (the kill takes the workers down with the server, exactly like a
machine crash), not an in-process scheduler.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time

import pytest

from _helpers import small_spec
from repro.api import Experiment, run_record
from repro.service import JobState, JobStore, read_events

N_JOBS = 8
SERVE_TIMEOUT = 300.0


def spawn_server(root, *extra: str) -> subprocess.Popen:
    return subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve", "--root", str(root),
            "--max-workers", str(N_JOBS), "--poll", "0.05", *extra,
        ],
        env=dict(os.environ),
        start_new_session=True,  # own process group: killpg == machine crash
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )


def test_sigkill_mid_iteration_then_restart_completes_bit_identical(tmp_path):
    root = tmp_path / "root"
    store = JobStore(root)
    # The acceptance scenario: 8 jobs executing concurrently (one worker
    # slot each), enough iterations per job that the kill lands mid-run.
    specs = [
        small_spec(seed, max_iterations=6, n_series=400)
        for seed in range(N_JOBS - 1)
    ] + [small_spec(77, plane="vectorized", max_iterations=4, n_series=250)]
    store.submit_batch(specs)

    server = spawn_server(root)
    pre_kill_feed: list[dict] = []
    try:
        deadline = time.monotonic() + SERVE_TIMEOUT
        while time.monotonic() < deadline:
            pre_kill_feed = read_events(store.feed_path)
            if sum(
                r["type"] == "iteration_completed" for r in pre_kill_feed
            ) >= 2:
                break
            time.sleep(0.02)
        else:
            pytest.fail("server produced no iterations before the deadline")
    finally:
        os.killpg(server.pid, signal.SIGKILL)
        server.wait()

    interrupted = store.in_state(JobState.RUNNING)
    assert interrupted, "expected jobs to be mid-flight at the kill"

    # Restart: recovery re-enqueues the crash-marked jobs, workers resume
    # from their checkpoints, and the drain finishes the whole batch.
    restart = spawn_server(root, "--drain", "--timeout", str(SERVE_TIMEOUT))
    assert restart.wait(timeout=SERVE_TIMEOUT) == 0

    final = store.jobs()
    assert [job.state for job in final] == [JobState.COMPLETED] * N_JOBS
    resumed = [job for job in final if job.attempts > 1]
    assert resumed, "at least the killed jobs must have re-attempted"

    for job, spec in zip(final, specs):
        record = store.load_result(job.job_id)
        assert record["schema"] == "chiaroscuro-run/v1"
        inline = Experiment.from_spec(spec).run()
        expected = json.loads(json.dumps(run_record(spec, inline)["result"]))
        assert record["result"] == expected, f"{job.job_id} diverged"

    # A checkpointed job killed mid-run must have *resumed*, not
    # restarted: its post-kill run_started reports the checkpoint.  (Jobs
    # killed before their first checkpoint legitimately restart at 0, so
    # the assertion only applies when the pre-kill feed shows a save.)
    resumed_markers = [
        r
        for job in resumed
        for r in read_events(store.events_path(job.job_id))
        if r["type"] == "run_started" and r["resumed_iteration"] > 0
    ]
    if any(r["type"] == "checkpoint_saved" for r in pre_kill_feed):
        assert resumed_markers, "no job resumed from its checkpoint"
