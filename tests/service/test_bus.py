"""NDJSON event bus: wire-format serialization, torn-tail tolerance."""

from __future__ import annotations

import json
import pathlib

import pytest

from repro.api import (
    CheckpointSaved,
    Experiment,
    RunCompleted,
    RunStarted,
    event_to_dict,
)
from _helpers import small_spec
from repro.service import (
    EventBus,
    JobStore,
    append_ndjson,
    next_seq,
    read_events,
)


class TestEventToDict:
    def test_full_stream_serializes(self):
        spec = small_spec(3)
        kinds = []
        for event in Experiment.from_spec(spec).run_iter():
            record = event_to_dict(event)
            kinds.append(record["type"])
            json.dumps(record)  # every record must be JSON-clean
        assert kinds[0] == "run_started"
        assert kinds[-1] == "run_completed"
        assert "iteration_completed" in kinds

    def test_checkpoint_saved_path_is_string(self, tmp_path):
        record = event_to_dict(
            CheckpointSaved(iteration=2, path=pathlib.Path(tmp_path) / "x")
        )
        assert record["type"] == "checkpoint_saved"
        assert isinstance(record["path"], str)

    def test_run_completed_summarizes_without_payload(self):
        spec = small_spec(3)
        events = list(Experiment.from_spec(spec).run_iter())
        completed = [e for e in events if isinstance(e, RunCompleted)][0]
        record = event_to_dict(completed)
        assert record["iterations"] == completed.result.iterations
        assert "history" not in record and "centroids" not in record

    def test_run_started_carries_environment(self):
        spec = small_spec(3)
        started = next(iter(Experiment.from_spec(spec).run_iter()))
        assert isinstance(started, RunStarted)
        record = event_to_dict(started)
        assert record["bigint_backend"] in ("python", "gmpy2")
        assert record["key_bits"] == 0  # quality plane runs no real crypto

    def test_rejects_non_events(self):
        with pytest.raises(TypeError, match="not a run event"):
            event_to_dict({"type": "imposter"})


class TestNdjson:
    def test_append_and_read_round_trip(self, tmp_path):
        path = tmp_path / "log.ndjson"
        for i in range(5):
            append_ndjson(path, {"i": i})
        assert [r["i"] for r in read_events(path)] == list(range(5))

    def test_read_tolerates_torn_tail(self, tmp_path):
        path = tmp_path / "log.ndjson"
        append_ndjson(path, {"ok": 1})
        with open(path, "a") as fh:
            fh.write('{"torn": tr')  # kill mid-append
        assert read_events(path) == [{"ok": 1}]

    def test_read_missing_file_is_empty(self, tmp_path):
        assert read_events(tmp_path / "absent.ndjson") == []


class TestEventBus:
    def test_publish_multiplexes_job_log_and_feed(self, tmp_path):
        store = JobStore(tmp_path)
        job_a = store.submit(small_spec(1))
        job_b = store.submit(small_spec(2))
        for job in (job_a, job_b):
            bus = EventBus(store, job.job_id)
            for event in Experiment.from_spec(
                small_spec(job.spec["seed"])
            ).run_iter():
                record = bus.publish(event)
                assert record["job"] == job.job_id
                assert "ts" in record
        own = read_events(store.events_path(job_a.job_id))
        assert {r["job"] for r in own} == {job_a.job_id}
        feed = read_events(store.feed_path)
        assert {r["job"] for r in feed} == {job_a.job_id, job_b.job_id}
        assert len(feed) == len(own) + len(
            read_events(store.events_path(job_b.job_id))
        )


class TestSeq:
    def test_publish_stamps_monotonic_seq(self, tmp_path):
        store = JobStore(tmp_path)
        job = store.submit(small_spec(1))
        bus = EventBus(store, job.job_id)
        for event in Experiment.from_spec(small_spec(1)).run_iter():
            bus.publish(event)
        seqs = [r["seq"] for r in read_events(store.events_path(job.job_id))]
        assert seqs == list(range(len(seqs)))
        assert len(seqs) >= 3

    def test_seq_resumes_across_bus_restarts(self, tmp_path):
        """A worker restart (new EventBus over the same log) continues
        the numbering instead of starting over."""
        store = JobStore(tmp_path)
        job = store.submit(small_spec(1))
        first = EventBus(store, job.job_id)
        first.publish_record({"type": "run_started", "job": job.job_id})
        first.publish_record({"type": "iteration_completed",
                              "iteration": 1, "job": job.job_id})
        second = EventBus(store, job.job_id)
        second.publish_record({"type": "iteration_completed",
                               "iteration": 2, "job": job.job_id})
        seqs = [r["seq"] for r in read_events(store.events_path(job.job_id))]
        assert seqs == [0, 1, 2]

    def test_next_seq_counts_complete_lines_without_seq(self, tmp_path):
        """Pre-seq logs: numbering starts after the existing lines, so
        offset-keyed history and seq-keyed future never collide."""
        path = tmp_path / "events.ndjson"
        assert next_seq(path) == 0
        append_ndjson(path, {"type": "run_started"})
        append_ndjson(path, {"type": "iteration_completed"})
        assert next_seq(path) == 2
        append_ndjson(path, {"type": "checkpoint_saved", "seq": 7})
        assert next_seq(path) == 8

    def test_next_seq_ignores_torn_tail(self, tmp_path):
        path = tmp_path / "events.ndjson"
        append_ndjson(path, {"seq": 4})
        with open(path, "a") as fh:
            fh.write('{"seq": 99')  # no newline: still being written
        assert next_seq(path) == 5

    def test_caller_supplied_seq_wins(self, tmp_path):
        """publish_record only fills seq in when absent — readers of
        replayed/merged logs keep whatever the writer recorded."""
        store = JobStore(tmp_path)
        job = store.submit(small_spec(1))
        bus = EventBus(store, job.job_id)
        bus.publish_record({"type": "run_started", "job": job.job_id,
                            "seq": 10})
        bus.publish_record({"type": "iteration_completed", "iteration": 1,
                            "job": job.job_id})
        seqs = [r["seq"] for r in read_events(store.events_path(job.job_id))]
        assert seqs == [10, 11]

    def test_readers_tolerate_missing_seq(self, tmp_path):
        """Satellite guarantee: consumers never require the field."""
        path = tmp_path / "events.ndjson"
        append_ndjson(path, {"type": "run_started", "job": "j"})
        records = read_events(path)
        assert records[0].get("seq") is None
