"""Scheduler: concurrent execution, failure isolation, bit-identity.

These tests drive the real process-per-job path (the scheduler spawns
``repro.service.worker`` subprocesses), just in-process from pytest via
``drain()`` instead of ``repro serve``.
"""

from __future__ import annotations

import json

import pytest

from _helpers import small_spec
from repro.api import Experiment, RunSpec, run_record
from repro.service import JobState, JobStore, Scheduler, read_events, run_batch

DRAIN_TIMEOUT = 300.0  # generous: CI boxes cold-start numpy per worker


def json_round_trip(payload: dict) -> dict:
    return json.loads(json.dumps(payload))


class TestScheduler:
    def test_concurrent_batch_completes_bit_identical(self, tmp_path):
        """Mixed planes + strategies, more jobs than workers: every job
        completes, and each record equals the same spec run inline."""
        specs = [small_spec(seed) for seed in range(4)] + [
            small_spec(9, plane="vectorized")
        ]
        records = run_batch(
            specs, tmp_path / "root", max_workers=3, timeout=DRAIN_TIMEOUT
        )
        for spec, record in zip(specs, records):
            assert record["schema"] == "chiaroscuro-run/v1"
            inline = Experiment.from_spec(spec).run()
            assert record["result"] == json_round_trip(
                run_record(spec, inline)["result"]
            )

    def test_failing_job_does_not_poison_the_batch(self, tmp_path):
        """A spec that validates but explodes at build time fails alone;
        the rest of the batch completes."""
        store = JobStore(tmp_path / "root")
        good = store.submit(small_spec(1))
        # passes RunSpec validation (dataset params are opaque kwargs) but
        # the worker's generator call rejects the unknown kwarg
        bad_dict = small_spec(2).to_dict()
        bad_dict["dataset"]["params"]["bogus_knob"] = 1
        bad = store.submit(RunSpec.from_dict(bad_dict))
        scheduler = Scheduler(store, max_workers=2, poll_interval=0.05)
        scheduler.drain(timeout=DRAIN_TIMEOUT)
        assert store.get(good.job_id).state == JobState.COMPLETED
        failed = store.get(bad.job_id)
        assert failed.state == JobState.FAILED
        assert "bogus_knob" in failed.error
        feed = read_events(store.feed_path)
        assert any(r["type"] == "job_failed" for r in feed)

    def test_run_batch_raises_on_failure(self, tmp_path):
        bad_dict = small_spec(2).to_dict()
        bad_dict["dataset"]["params"]["bogus_knob"] = 1
        with pytest.raises(RuntimeError, match="did not complete"):
            run_batch(
                [bad_dict], tmp_path / "root", max_workers=1,
                timeout=DRAIN_TIMEOUT,
            )

    def test_events_multiplexed_per_job_and_combined(self, tmp_path):
        store = JobStore(tmp_path / "root")
        jobs = [store.submit(small_spec(seed)) for seed in range(2)]
        Scheduler(store, max_workers=2, poll_interval=0.05).drain(
            timeout=DRAIN_TIMEOUT
        )
        for job in jobs:
            own = read_events(store.events_path(job.job_id))
            kinds = [r["type"] for r in own]
            assert kinds[0] == "run_started"
            assert kinds[-1] == "job_completed"
            assert "checkpoint_saved" in kinds
            assert {r["job"] for r in own} == {job.job_id}
        feed = read_events(store.feed_path)
        assert {r["job"] for r in feed} == {job.job_id for job in jobs}

    def test_validates_max_workers(self, tmp_path):
        with pytest.raises(ValueError, match="max_workers"):
            Scheduler(JobStore(tmp_path), max_workers=0)
