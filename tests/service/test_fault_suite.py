"""Attack-grid smoke through the service scheduler (the CI fault-suite).

One spec per fault class runs through the real process-per-job path; the
suite asserts detection events land on the NDJSON bus, aborted runs
complete *cleanly* (job COMPLETED, exit 0 — an attack is a result, not a
crash), and records come back for every hostile spec.
"""

from __future__ import annotations

import pytest

from repro.api import RunSpec
from repro.service import JobState, JobStore, Scheduler, read_events

DRAIN_TIMEOUT = 300.0

#: The smoke grid: every fault class exercised once, vectorized plane
#: (sub-second per job, no key generation in the worker).
ATTACKS = {
    "network": {"kind": "network",
                "params": {"loss": 0.3, "duplicate": 0.1, "delay": 0.1}},
    "byzantine-tamper": {"kind": "byzantine",
                         "params": {"fraction": 0.15, "mode": "tamper",
                                    "scale": 0.5}},
    "byzantine-malformed": {"kind": "byzantine",
                            "params": {"nodes": [1], "mode": "malformed"}},
    "churn-storm": {"kind": "churn-storm",
                    "params": {"rate": 1.0, "magnitude": 0.2,
                               "duration": 2}},
    "collusion": {"kind": "collusion", "params": {"fraction": 0.4}},
}

#: Detector each attack must surface on the bus (None: degradation only).
EXPECTED_DETECTOR = {
    "network": None,
    "byzantine-tamper": "decryption-cross-check",
    "byzantine-malformed": "decryption-cross-check",
    "churn-storm": "availability-monitor",
    "collusion": "coalition-audit",
}


def attack_spec(name: str, fault: dict) -> RunSpec:
    return RunSpec.from_dict({
        "name": f"fault-suite-{name}",
        "plane": "vectorized",
        "seed": 11,
        "strategy": "UF2",
        "dataset": {"kind": "points2d",
                    "params": {"n_clusters": 4, "points_per_cluster": 12,
                               "duplications": 1}},
        "init": {"kind": "sample"},
        "params": {"k": 3, "max_iterations": 2, "exchanges": 12,
                   "tau_fraction": 0.1, "epsilon": 2000.0, "theta": 0.0},
        "faults": [fault],
    })


@pytest.fixture(scope="module")
def drained_store(tmp_path_factory):
    """Submit the whole grid once; every test inspects the same store."""
    store = JobStore(tmp_path_factory.mktemp("fault-suite") / "root")
    jobs = {
        name: store.submit(attack_spec(name, fault))
        for name, fault in ATTACKS.items()
    }
    scheduler = Scheduler(store, max_workers=2, poll_interval=0.05)
    scheduler.recover()
    scheduler.drain(timeout=DRAIN_TIMEOUT)
    return store, jobs


class TestFaultSuite:
    def test_every_hostile_job_completes(self, drained_store):
        store, jobs = drained_store
        for name, job in jobs.items():
            final = store.get(job.job_id)
            assert final.state == JobState.COMPLETED, (
                f"{name}: {final.state} ({final.error})"
            )
            assert store.load_result(job.job_id) is not None, name

    def test_detection_events_reach_the_bus(self, drained_store):
        store, jobs = drained_store
        for name, job in jobs.items():
            expected = EXPECTED_DETECTOR[name]
            records = read_events(store.events_path(job.job_id))
            detectors = {
                r["detector"] for r in records if r["type"] == "fault_detected"
            }
            if expected is None:
                assert not detectors, f"{name} must not raise attack signals"
            else:
                assert expected in detectors, (
                    f"{name}: wanted {expected}, bus carried {detectors}"
                )

    def test_aborted_run_is_a_clean_completion(self, drained_store):
        """The NaN poison aborts — as a run_aborted event plus a final
        run_completed with reason 'aborted', with the job COMPLETED."""
        store, jobs = drained_store
        job = jobs["byzantine-malformed"]
        records = read_events(store.events_path(job.job_id))
        aborted = [r for r in records if r["type"] == "run_aborted"]
        assert len(aborted) == 1
        assert aborted[0]["fault"] == "byzantine"
        assert aborted[0]["epsilon_charged"] > 0
        completed = [r for r in records if r["type"] == "run_completed"]
        assert completed and completed[-1]["reason"] == "aborted"
        assert store.get(job.job_id).state == JobState.COMPLETED

    def test_unaborted_attacks_report_survival_quality(self, drained_store):
        """Non-aborting attacks still produce a full quality record — the
        bench's quality-under-attack comparisons depend on it."""
        store, jobs = drained_store
        for name in ("network", "byzantine-tamper", "churn-storm",
                     "collusion"):
            record = store.load_result(jobs[name].job_id)
            assert record["schema"] == "chiaroscuro-run/v1"
            assert record["spec"]["faults"], name
            assert record["result"]["history"], name
