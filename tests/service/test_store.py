"""JobStore: durable queue semantics, claim ordering, crash markers."""

from __future__ import annotations

import json

import pytest

from _helpers import small_spec
from repro.api import RunSpec
from repro.service import Job, JobState, JobStore


class TestSubmit:
    def test_submit_writes_durable_record(self, tmp_path):
        store = JobStore(tmp_path)
        job = store.submit(small_spec(1))
        assert job.state == JobState.QUEUED
        payload = json.loads(store.job_path(job.job_id).read_text())
        assert payload["format"] == "chiaroscuro-job/v1"
        assert Job.from_dict(payload) == job
        # a second store over the same root sees the job
        assert JobStore(tmp_path).get(job.job_id) == job

    def test_submit_accepts_dict_and_validates(self, tmp_path):
        store = JobStore(tmp_path)
        job = store.submit(small_spec(2).to_dict())
        assert RunSpec.from_dict(job.spec) == small_spec(2)
        with pytest.raises(ValueError, match="unknown plane"):
            store.submit({**small_spec(0).to_dict(), "plane": "warp"})

    def test_submit_batch_is_all_or_nothing_validation(self, tmp_path):
        store = JobStore(tmp_path)
        bad = {**small_spec(0).to_dict(), "strategy": "UFx"}
        with pytest.raises(ValueError):
            store.submit_batch([small_spec(1).to_dict(), bad])
        assert store.jobs() == []  # the good spec was not half-enqueued

    def test_job_ids_unique_and_sluggged(self, tmp_path):
        store = JobStore(tmp_path)
        jobs = [store.submit(small_spec(s, name="My Run!")) for s in range(5)]
        assert len({job.job_id for job in jobs}) == 5
        assert all("my-run" in job.job_id for job in jobs)


class TestQueue:
    def test_claim_order_is_submit_order(self, tmp_path):
        store = JobStore(tmp_path)
        submitted = [store.submit(small_spec(s)) for s in range(3)]
        claimed = [store.claim_next().job_id for _ in range(3)]
        assert claimed == [job.job_id for job in submitted]
        assert store.claim_next() is None

    def test_claim_marks_running_and_counts_attempts(self, tmp_path):
        store = JobStore(tmp_path)
        store.submit(small_spec(1))
        job = store.claim_next()
        assert job.state == JobState.RUNNING
        assert job.attempts == 1
        assert job.started_at is not None

    def test_update_is_read_modify_write(self, tmp_path):
        store = JobStore(tmp_path)
        job = store.submit(small_spec(1))
        store.update(job.job_id, state=JobState.RUNNING, attempts=2)
        updated = store.update(job.job_id, error="boom")
        assert updated.state == JobState.RUNNING  # earlier change preserved
        assert updated.attempts == 2
        assert updated.error == "boom"

    def test_get_unknown_job(self, tmp_path):
        with pytest.raises(KeyError, match="unknown job"):
            JobStore(tmp_path).get("nope")

    def test_init_sweeps_stale_job_record_tmps(self, tmp_path):
        """A kill mid-job.json-write leaves a pid-stamped tmp; the next
        store construction (dead writer) must sweep it."""
        import subprocess
        import sys

        store = JobStore(tmp_path)
        job = store.submit(small_spec(1))
        dead_pid = int(subprocess.run(
            [sys.executable, "-c", "import os; print(os.getpid())"],
            capture_output=True, text=True, check=True,
        ).stdout)
        stale = store.job_dir(job.job_id) / f"job.json.{dead_pid}.tmp"
        stale.write_text("{torn")
        JobStore(tmp_path)
        assert not stale.exists()
        assert store.get(job.job_id) == job  # the real record is untouched


class TestRecovery:
    def test_recover_requeues_running_jobs(self, tmp_path):
        store = JobStore(tmp_path)
        a = store.submit(small_spec(1))
        b = store.submit(small_spec(2))
        store.claim_next()  # a → running (then the "server" dies)
        recovered = store.recover()
        assert [job.job_id for job in recovered] == [a.job_id]
        assert store.get(a.job_id).state == JobState.QUEUED
        assert store.get(a.job_id).attempts == 1  # attempt history kept
        assert store.get(b.job_id).state == JobState.QUEUED

    def test_recover_leaves_terminal_states_alone(self, tmp_path):
        store = JobStore(tmp_path)
        done = store.submit(small_spec(1))
        dead = store.submit(small_spec(2))
        store.update(done.job_id, state=JobState.COMPLETED)
        store.update(dead.job_id, state=JobState.FAILED, error="x")
        assert store.recover() == []
        assert store.get(done.job_id).state == JobState.COMPLETED
        assert store.get(dead.job_id).state == JobState.FAILED
