"""Shared builders for the service test suite (imported via pytest's
test-dir sys.path insertion, like the benchmark suite's conftest)."""

from __future__ import annotations

from repro.api import RunSpec


def small_spec(seed: int = 0, name: str = "", plane: str = "quality",
               max_iterations: int = 2, n_series: int = 100) -> RunSpec:
    """A sub-second quality/vectorized spec for service tests."""
    params = {"k": 3, "max_iterations": max_iterations, "epsilon": 50.0,
              "theta": 0.0}
    if plane == "vectorized":
        params["exchanges"] = 10
    return RunSpec.from_dict({
        "name": name or f"svc-test-{plane}-{seed}",
        "plane": plane,
        "seed": seed,
        "strategy": "G",
        "dataset": {"kind": "cer",
                    "params": {"n_series": n_series, "population_scale": 100}},
        "init": {"kind": "courbogen"},
        "params": params,
    })
