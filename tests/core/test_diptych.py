"""Tests for the Diptych data structure (Definition 6)."""

import random

import numpy as np
import pytest

from repro.core import Diptych, EncryptedMean, initialize_means
from repro.crypto import FixedPointCodec, decrypt, encrypt_zero_pool


class TestEncryptedMean:
    def test_vector_roundtrip(self):
        mean = EncryptedMean(sum_cipher=[10, 20, 30], count_cipher=40, omega=2)
        vector = mean.as_vector()
        assert vector == [10, 20, 30, 40]
        back = EncryptedMean.from_vector(vector, omega=2)
        assert back.sum_cipher == [10, 20, 30]
        assert back.count_cipher == 40
        assert back.omega == 2


class TestDiptych:
    def test_flatten_unflatten(self):
        means = [
            EncryptedMean([1, 2], 3),
            EncryptedMean([4, 5], 6),
        ]
        diptych = Diptych(centroids=np.zeros((2, 2)), means=means)
        flat = diptych.flatten_means()
        assert flat == [1, 2, 3, 4, 5, 6]
        rebuilt = Diptych.unflatten_means(flat, k=2, omega=0)
        assert rebuilt[0].as_vector() == [1, 2, 3]
        assert rebuilt[1].as_vector() == [4, 5, 6]

    def test_unflatten_validation(self):
        with pytest.raises(ValueError):
            Diptych.unflatten_means([1, 2, 3], k=2, omega=0)

    def test_exported_fields_trichotomy(self):
        """Every exported field is dp, encrypted, or data-independent — the
        information-flow shape of the Theorem 2 proof."""
        diptych = Diptych(centroids=np.zeros((1, 2)))
        classes = set(diptych.exported_fields().values())
        assert classes <= {"dp", "encrypted", "independent"}
        assert diptych.exported_fields()["centroids"] == "dp"
        assert diptych.exported_fields()["means.sum_cipher"] == "encrypted"


class TestInitializeMeans:
    def test_assignment_semantics(self, keypair128):
        """Alg. 1 l.6: own series in the assigned slot, zeros elsewhere."""
        codec = FixedPointCodec(keypair128.public, fractional_bits=16)
        rng = random.Random(0)
        series = np.array([1.5, -2.0, 3.0])
        means = initialize_means(
            keypair128.public, codec, series, assigned_cluster=1, k=3, rng=rng
        )
        assert len(means) == 3
        for cluster, mean in enumerate(means):
            values = [codec.decode(decrypt(keypair128, c)) for c in mean.sum_cipher]
            count = codec.decode(decrypt(keypair128, mean.count_cipher))
            if cluster == 1:
                assert values == pytest.approx([1.5, -2.0, 3.0])
                assert count == pytest.approx(1.0)
            else:
                assert values == pytest.approx([0.0, 0.0, 0.0])
                assert count == pytest.approx(0.0)
            assert mean.omega == 0

    def test_randomizer_pool(self, keypair128):
        codec = FixedPointCodec(keypair128.public, fractional_bits=16)
        rng = random.Random(1)
        pool = encrypt_zero_pool(keypair128.public, 8, rng)
        series = np.array([4.0])
        means = initialize_means(
            keypair128.public, codec, series, 0, k=4, rng=rng, randomizers=pool
        )
        total = codec.decode(decrypt(keypair128, means[0].sum_cipher[0]))
        assert total == pytest.approx(4.0)

    def test_ciphertexts_not_deterministic(self, keypair128):
        """Zero slots must still be semantically secure (distinct ciphertexts)."""
        codec = FixedPointCodec(keypair128.public, fractional_bits=16)
        rng = random.Random(2)
        means = initialize_means(
            keypair128.public, codec, np.array([1.0]), 0, k=3, rng=rng
        )
        zeros = [means[1].sum_cipher[0], means[2].sum_cipher[0]]
        assert zeros[0] != zeros[1]
