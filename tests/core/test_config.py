"""Tests pinning the Table 1/2 parameter sheet."""

import pytest

from repro.core import ChiaroscuroParams


class TestTable2Defaults:
    def test_defaults_mirror_table2(self):
        params = ChiaroscuroParams()
        assert params.k == 50
        assert params.key_bits == 1024
        assert params.epsilon == 0.69  # ln 2
        assert params.noise_share_fraction == 1.0  # n_ν = 100 %
        assert params.view_size == 30
        assert params.max_iterations == 10
        assert params.floor_size == 4
        assert params.uf_iterations == 5
        assert params.smoothing_fraction == 0.2  # SMA 20 %

    def test_tau_range_matches_table(self):
        """Table 2: τ ∈ [0.001 %, 10 %]; default realistic case 0.01 %."""
        params = ChiaroscuroParams()
        assert params.tau_fraction == pytest.approx(1e-4)
        assert params.tau_count(10**6) == 100  # the paper's "100 participants"

    def test_tau_count_floor(self):
        assert ChiaroscuroParams(tau_fraction=1e-4).tau_count(100) == 1

    def test_noise_share_count(self):
        assert ChiaroscuroParams().noise_share_count(1234) == 1234
        assert ChiaroscuroParams(noise_share_fraction=0.5).noise_share_count(1000) == 500

    def test_smoothing_window(self):
        params = ChiaroscuroParams()
        assert params.smoothing_window(24) == 4  # round(4.8) = 5 → even 4
        assert params.smoothing_window(20) == 4
        assert params.smoothing_window(2) == 0


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"k": 1},
            {"theta": -1.0},
            {"max_iterations": 0},
            {"exchanges": 0},
            {"tau_fraction": 0.0},
            {"tau_fraction": 1.5},
            {"epsilon": 0.0},
            {"delta": 0.0},
            {"noise_share_fraction": 0.0},
            {"smoothing_fraction": 1.0},
        ],
    )
    def test_invalid_parameters(self, kwargs):
        with pytest.raises(ValueError):
            ChiaroscuroParams(**kwargs)
