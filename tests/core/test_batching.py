"""Tests for the batched ciphertext planes (scalar vs packed) and the
backend plumbing through the full protocol.

The two strong guarantees under test:

* the packed plane decodes **bit-identically** to the scalar plane after a
  real EESum accumulation (tracker-based bias subtraction is exact);
* a full protocol run is **reproducible across backends**: serial and
  process-pool executions with the same seed produce identical centroids.
"""

import random

import numpy as np
import pytest

from repro.core import (
    ChiaroscuroParams,
    ChiaroscuroRun,
    ComputationStep,
    NoisePlan,
    PackedPlane,
    Participant,
    ScalarPlane,
)
from repro.core.diptych import initialize_means
from repro.crypto import FixedPointCodec, PackedCodec, decrypt
from repro.datasets import TimeSeriesSet
from repro.gossip import GossipEngine
from repro.gossip.eesum import EESum
from repro.privacy import UniformFast


@pytest.fixture()
def planes(threshold_keypair):
    public = threshold_keypair.public
    codec = FixedPointCodec(public, fractional_bits=16)
    packed = PackedCodec(
        public, fractional_bits=16, value_bits=24, accumulation_bits=40
    )
    return ScalarPlane(public, codec), PackedPlane(public, packed)


class TestScalarPlane:
    def test_matches_diptych_initialization(self, threshold_keypair):
        """Participant + ScalarPlane encodes exactly what initialize_means does."""
        public = threshold_keypair.public
        codec = FixedPointCodec(public, fractional_bits=16)
        series = np.array([1.5, -2.0, 3.25])
        participant = Participant(
            node_id=0, series=series, public=public, codec=codec,
            plane=ScalarPlane(public, codec),
        )
        centroids = np.array([[1.0, -2.0, 3.0], [50.0, 50.0, 50.0]])
        vector = participant.encrypted_means_vector(centroids, random.Random(0))

        means = initialize_means(public, codec, series, 0, 2, random.Random(1))
        legacy = [c for mean in means for c in mean.as_vector()]
        assert len(vector) == len(legacy) == 8
        private = threshold_keypair.private
        assert [decrypt(private, c) for c in vector] == [
            decrypt(private, c) for c in legacy
        ]

    def test_decode_sums_length_check(self, planes):
        scalar, _ = planes
        with pytest.raises(ValueError, match="expected 3 plaintexts"):
            scalar.decode_sums([1, 2], 3)


class TestPackedPlaneEquivalence:
    def test_eesum_decodes_bit_identical_to_scalar(self, threshold_keypair, planes):
        """Run the same values through a real gossip EESum on both planes;
        the decoded estimates must be equal as floats, not just close."""
        scalar, packed = planes
        private = threshold_keypair.private
        rng = random.Random(3)
        values = {i: [float(i) + 0.5, -2.0 * i, 7.25] for i in range(6)}

        estimates = {}
        for name, plane in (("scalar", scalar), ("packed", packed)):
            initial = {
                i: plane.encrypt_values(v, rng) + plane.tracker_ciphertexts(rng)
                for i, v in values.items()
            }
            engine = GossipEngine(6, seed=11)
            eesum = EESum(plane.public, initial)
            engine.setup(eesum)
            engine.run_cycles(8, eesum)
            per_node = []
            for node in engine.nodes:
                state = eesum.state_of(node)
                plaintexts = [decrypt(private, c) for c in state.ciphertexts]
                decoded = plane.decode_sums(plaintexts, 3, bias_terms=1)
                per_node.append(decoded / state.omega)
            estimates[name] = per_node

        for scalar_est, packed_est in zip(estimates["scalar"], estimates["packed"]):
            assert scalar_est.tolist() == packed_est.tolist()

    def test_tracker_counts_coefficient_mass(self, planes):
        _, packed = planes
        tracker = packed.tracker_ciphertexts(random.Random(4))
        assert len(tracker) == packed.tracker_length == 1

    def test_packed_length(self, planes):
        _, packed = planes
        assert packed.packed_length(packed.packed.slots) == 1
        assert packed.packed_length(packed.packed.slots + 1) == 2


class TestComputationStepPacked:
    def test_sums_and_counts_match_truth(self, threshold_keypair_s2):
        """The Alg. 3 step over the packed plane recovers the true per-cluster
        sums and counts (negligible noise)."""
        keypair = threshold_keypair_s2
        codec = FixedPointCodec(keypair.public, fractional_bits=20)
        packed = PackedCodec(
            keypair.public, fractional_bits=20, value_bits=28, accumulation_bits=90
        )
        plane = PackedPlane(keypair.public, packed)
        crypto_rng = random.Random(0)
        series = np.array(
            [[1.0, 2, 3], [1, 2, 3], [1, 2, 3], [1, 2, 3],
             [10, 20, 30], [10, 20, 30], [10, 20, 30], [10, 20, 30]]
        )
        assignments = [0, 0, 0, 0, 1, 1, 1, 1]
        vectors = {}
        for node, (row, cluster) in enumerate(zip(series, assignments)):
            participant = Participant(
                node_id=node, series=row, public=keypair.public,
                codec=codec, plane=plane,
            )
            vectors[node] = participant.plane.encrypt_values(
                participant.means_value_vector(cluster, 2), crypto_rng
            )
        plan = NoisePlan(
            k=2, series_length=3, dmin=0.0, dmax=30.0, epsilon=1e9, n_nu=8
        )
        step = ComputationStep(
            keypair=keypair, codec=codec, noise_plan=plan, exchanges=15,
            crypto_rng=crypto_rng, noise_rng=np.random.default_rng(1),
            plane=plane,
        )
        output = step.run(GossipEngine(8, seed=8), vectors)
        assert set(output.sums) == set(range(8))
        for node in range(8):
            means, counts = output.perturbed_means(node)
            assert counts[0] == pytest.approx(4.0, abs=0.05)
            assert counts[1] == pytest.approx(4.0, abs=0.05)
            assert np.allclose(means[0], [1.0, 2.0, 3.0], atol=0.1)
            assert np.allclose(means[1], [10.0, 20.0, 30.0], atol=0.3)


@pytest.fixture(scope="module")
def tiny_dataset():
    rng = np.random.default_rng(6)
    base = np.array([[5.0, 5, 40, 40], [40, 40, 5, 5]])
    values = np.clip(np.repeat(base, 12, axis=0) + rng.normal(0, 1, (24, 4)), 0, 60)
    return TimeSeriesSet(values, dmin=0.0, dmax=60.0, name="tiny")


class TestProtocolBackendPlumbing:
    def test_backend_selected_from_params(self, tiny_dataset, threshold_keypair_s2):
        params = ChiaroscuroParams(
            k=2, max_iterations=1, exchanges=8, tau_fraction=0.13,
            epsilon=1e6, expansion_s=2, use_smoothing=False, theta=0.0,
            crypto_backend="process", backend_workers=2,
        )
        run = ChiaroscuroRun(
            tiny_dataset, UniformFast(1e6, 1), params,
            np.array([[10.0, 10, 30, 30], [30, 30, 10, 10]]),
            key_bits=256, seed=2, keypair=threshold_keypair_s2,
        )
        assert run.backend.name == "process"
        assert run.backend.max_workers == 2
        run.close()

    def test_packing_toggle(self, tiny_dataset, threshold_keypair_s2):
        base = dict(
            k=2, max_iterations=1, exchanges=8, tau_fraction=0.13,
            epsilon=1e6, expansion_s=2, use_smoothing=False, theta=0.0,
        )
        centroids = np.array([[10.0, 10, 30, 30], [30, 30, 10, 10]])
        packed_run = ChiaroscuroRun(
            tiny_dataset, UniformFast(1e6, 1), ChiaroscuroParams(**base),
            centroids, key_bits=256, seed=2, keypair=threshold_keypair_s2,
        )
        scalar_run = ChiaroscuroRun(
            tiny_dataset, UniformFast(1e6, 1),
            ChiaroscuroParams(**base, use_packing=False),
            centroids, key_bits=256, seed=2, keypair=threshold_keypair_s2,
        )
        assert isinstance(packed_run.plane, PackedPlane)
        assert isinstance(scalar_run.plane, ScalarPlane)

    def test_serial_and_process_runs_identical(
        self, tiny_dataset, threshold_keypair_s2
    ):
        """Satellite: per-item RNG seeding makes protocol runs reproducible
        across backends — centroids match exactly, not approximately."""
        centroids = np.array([[10.0, 10, 30, 30], [30, 30, 10, 10]])
        results = {}
        for backend in ("serial", "process"):
            params = ChiaroscuroParams(
                k=2, max_iterations=1, exchanges=8, tau_fraction=0.13,
                epsilon=5.0, expansion_s=2, use_smoothing=False, theta=0.0,
                crypto_backend=backend, backend_workers=2,
            )
            run = ChiaroscuroRun(
                tiny_dataset, UniformFast(5.0, 1), params, centroids,
                key_bits=256, seed=9, keypair=threshold_keypair_s2,
            )
            result, _ = run.run()
            results[backend] = result
        serial, process = results["serial"], results["process"]
        assert len(serial.history) == len(process.history) == 1
        assert serial.history[0].centroids.tolist() == (
            process.history[0].centroids.tolist()
        )
        assert serial.centroids.tolist() == process.centroids.tolist()
