"""The full Chiaroscuro loop on the vectorized plane (Algorithm 1)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import ChiaroscuroParams, ChiaroscuroRun
from repro.datasets import TimeSeriesSet
from repro.privacy import Greedy


@pytest.fixture(scope="module")
def small_workload():
    rng = np.random.default_rng(21)
    centers = np.array([[5.0] * 8, [25.0] * 8, [15.0, 30.0] * 4])
    values = np.clip(
        np.concatenate([c + rng.normal(0, 1.0, (400, 8)) for c in centers]),
        0.0,
        40.0,
    )
    data = TimeSeriesSet(values, 0.0, 40.0, name="vec-run")
    init = centers + rng.normal(0, 2.0, centers.shape)
    return data, init


def test_vectorized_plane_runs_full_loop(small_workload):
    data, init = small_workload
    params = ChiaroscuroParams(
        k=3, max_iterations=4, exchanges=12, protocol_plane="vectorized",
        tau_fraction=0.01,
    )
    run = ChiaroscuroRun(data, Greedy(0.69), params, init, seed=7)
    result, trace = run.run()

    assert result.iterations >= 1
    assert len(trace.agreement) == result.iterations
    assert len(trace.exchanges_per_node) == result.iterations
    # Every iteration ran the full epidemic pipeline: EESum + dissemination
    # + decryption collection all consume exchanges.
    assert all(v > 2 * params.exchanges for v in trace.exchanges_per_node)
    # With this much signal and a concentrated budget, clusters survive.
    assert result.n_centroids_curve[0] >= 2


def test_vectorized_plane_respects_budget_and_smoothing_flags(small_workload):
    data, init = small_workload
    params = ChiaroscuroParams(
        k=3, max_iterations=3, exchanges=10, protocol_plane="vectorized",
        use_smoothing=False, tau_fraction=0.01,
    )
    run = ChiaroscuroRun(data, Greedy(0.5), params, init, seed=9)
    result, _ = run.run()
    assert result.smoothing is False
    assert sum(s.epsilon_spent for s in result.history) <= 0.5 + 1e-9


def test_vectorized_plane_is_seed_reproducible(small_workload):
    data, init = small_workload
    params = ChiaroscuroParams(
        k=3, max_iterations=2, exchanges=10, protocol_plane="vectorized",
        tau_fraction=0.01,
    )
    results = []
    for _ in range(2):
        run = ChiaroscuroRun(data, Greedy(0.69), params, init, seed=11)
        result, _ = run.run()
        results.append(result)
    assert results[0].iterations == results[1].iterations
    for a, b in zip(results[0].history, results[1].history):
        assert np.array_equal(a.centroids, b.centroids)


def test_vectorized_plane_skips_key_material(small_workload):
    data, init = small_workload
    params = ChiaroscuroParams(k=3, protocol_plane="vectorized")
    run = ChiaroscuroRun(data, Greedy(0.69), params, init, seed=1)
    assert run.keypair is None
    assert run.participants == []
    run.close()  # must be a no-op without a backend


def test_invalid_plane_rejected():
    with pytest.raises(ValueError):
        ChiaroscuroParams(protocol_plane="gpu")


def test_vectorized_plane_under_churn(small_workload):
    data, init = small_workload
    params = ChiaroscuroParams(
        k=3, max_iterations=2, exchanges=14, protocol_plane="vectorized",
        tau_fraction=0.01,
    )
    run = ChiaroscuroRun(data, Greedy(0.69), params, init, seed=3)
    result, trace = run.run(churn=0.25)
    assert result.iterations >= 1
    # Churned cycles still deliver roughly (1 - churn) exchanges per node
    # per cycle; far more than half the exchange budget must materialize.
    assert trace.exchanges_per_node[0] > params.exchanges
