"""Tests for the NoisePlan, result containers, and participant-local steps."""

import random

import numpy as np
import pytest

from repro.core import NoisePlan, Participant, encrypt_share_vector
from repro.core.results import ClusteringResult, IterationStats
from repro.crypto import FixedPointCodec, decrypt


class TestNoisePlan:
    def test_dimensions(self):
        plan = NoisePlan(k=5, series_length=24, dmin=0, dmax=80, epsilon=0.5, n_nu=100)
        assert plan.dimensions == 5 * 25

    def test_scale_uses_joint_sensitivity(self):
        plan = NoisePlan(k=2, series_length=24, dmin=0, dmax=80, epsilon=0.5, n_nu=10)
        assert plan.scale == pytest.approx((24 * 80 + 1) / 0.5)

    def test_share_shape(self):
        plan = NoisePlan(k=3, series_length=4, dmin=0, dmax=1, epsilon=1.0, n_nu=10)
        share = plan.draw_share(np.random.default_rng(0))
        assert share.shape == (15,)

    def test_shares_sum_to_laplace_variance(self):
        plan = NoisePlan(k=1, series_length=0 + 1, dmin=0, dmax=1, epsilon=1.0, n_nu=64)
        rng = np.random.default_rng(1)
        totals = np.array(
            [sum(plan.draw_share(rng)[0] for _ in range(64)) for _ in range(4000)]
        )
        assert totals.var() == pytest.approx(2 * plan.scale**2, rel=0.15)

    def test_correction_zero_without_surplus(self):
        plan = NoisePlan(k=1, series_length=2, dmin=0, dmax=1, epsilon=1.0, n_nu=50)
        assert np.allclose(plan.correction(50, np.random.default_rng(2)), 0.0)

    def test_correction_nonzero_with_surplus(self):
        plan = NoisePlan(k=1, series_length=2, dmin=0, dmax=1, epsilon=1.0, n_nu=50)
        correction = plan.correction(60, np.random.default_rng(3))
        assert not np.allclose(correction, 0.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            NoisePlan(k=0, series_length=2, dmin=0, dmax=1, epsilon=1.0, n_nu=5)
        with pytest.raises(ValueError):
            NoisePlan(k=1, series_length=2, dmin=0, dmax=1, epsilon=1.0, n_nu=0)

    def test_encrypt_share_vector_roundtrip(self, keypair128):
        codec = FixedPointCodec(keypair128.public, fractional_bits=20)
        share = np.array([1.25, -3.5, 0.0])
        ciphertexts = encrypt_share_vector(
            keypair128.public, codec, share, random.Random(0)
        )
        decoded = [codec.decode(decrypt(keypair128, c)) for c in ciphertexts]
        assert decoded == pytest.approx([1.25, -3.5, 0.0], abs=1e-5)


class TestParticipant:
    def test_closest_centroid(self, keypair128):
        codec = FixedPointCodec(keypair128.public, fractional_bits=16)
        participant = Participant(
            node_id=0,
            series=np.array([10.0, 10.0]),
            public=keypair128.public,
            codec=codec,
        )
        centroids = np.array([[0.0, 0.0], [9.0, 11.0], [30.0, 30.0]])
        assert participant.closest_centroid(centroids) == 1

    def test_encrypted_means_vector_length(self, keypair128):
        codec = FixedPointCodec(keypair128.public, fractional_bits=16)
        participant = Participant(
            node_id=0, series=np.array([1.0, 2.0, 3.0]),
            public=keypair128.public, codec=codec,
        )
        vector = participant.encrypted_means_vector(
            np.zeros((4, 3)), random.Random(0)
        )
        assert len(vector) == 4 * (3 + 1)


class TestResultContainers:
    def _result(self):
        result = ClusteringResult(centroids=np.zeros((2, 2)), strategy="G", smoothing=True)
        for i, (pre, n) in enumerate([(10.0, 5), (4.0, 4), (7.0, 3)], start=1):
            result.history.append(
                IterationStats(
                    iteration=i, pre_inertia=pre, post_inertia=pre + 1,
                    n_centroids=n, epsilon_spent=0.1, centroids=np.zeros((n, 2)),
                )
            )
        return result

    def test_curves(self):
        result = self._result()
        assert result.pre_inertia_curve == [10.0, 4.0, 7.0]
        assert result.n_centroids_curve == [5, 4, 3]
        assert result.iterations == 3

    def test_best_iteration(self):
        assert self._result().best_iteration().iteration == 2

    def test_best_iteration_empty(self):
        with pytest.raises(ValueError):
            ClusteringResult(centroids=np.zeros((1, 1))).best_iteration()

    def test_label(self):
        assert self._result().label == "G_SMA"
        plain = ClusteringResult(centroids=np.zeros((1, 1)), strategy="UF5")
        assert plain.label == "UF5"
