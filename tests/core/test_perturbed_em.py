"""Tests for the perturbed EM extension (the Sec. 8 perspective)."""

import numpy as np
import pytest

from repro.core import GaussianMixtureState, em_sensitivities, perturbed_em
from repro.datasets import TimeSeriesSet
from repro.privacy import Greedy, UniformFast


def gaussian_mixture_dataset(seed=0, per=400, scale=1000):
    rng = np.random.default_rng(seed)
    centers = np.array([[10.0, 10.0, 10.0], [30.0, 30.0, 30.0], [10.0, 30.0, 10.0]])
    values = np.concatenate(
        [c + rng.normal(0, 1.5, (per, 3)) for c in centers]
    )
    values = np.clip(values, 0.0, 40.0)
    return (
        TimeSeriesSet(values, 0.0, 40.0, name="gmm", population_scale=scale),
        centers,
    )


def initial_state(centers, jitter, seed=0):
    rng = np.random.default_rng(seed)
    k = len(centers)
    return GaussianMixtureState(
        means=centers + rng.normal(0, jitter, centers.shape),
        variances=np.full(k, 4.0),
        weights=np.full(k, 1.0 / k),
    )


class TestSensitivities:
    def test_values(self):
        sens = em_sensitivities(24, 0.0, 80.0)
        assert sens["sum"] == 1920.0  # same as the k-means Def. 4 number
        assert sens["count"] == 1.0
        assert sens["scatter"] == 24 * 80.0 * 80.0

    def test_negative_range(self):
        sens = em_sensitivities(10, -5.0, 3.0)
        assert sens["sum"] == 50.0
        assert sens["scatter"] == 10 * 64.0


class TestPerturbedEM:
    def test_recovers_components_low_noise(self):
        data, centers = gaussian_mixture_dataset(seed=1, scale=10**6)
        trace = perturbed_em(
            data, initial_state(centers, jitter=3.0, seed=1),
            UniformFast(0.69, 5), max_iterations=5,
            rng=np.random.default_rng(2),
        )
        assert trace.iterations == 5
        final = trace.states[-1]
        for center in centers:
            assert np.min(np.linalg.norm(final.means - center, axis=1)) < 1.5

    def test_log_likelihood_improves(self):
        data, centers = gaussian_mixture_dataset(seed=3, scale=10**6)
        trace = perturbed_em(
            data, initial_state(centers, jitter=4.0, seed=3),
            UniformFast(0.69, 6), max_iterations=6,
            rng=np.random.default_rng(4),
        )
        assert trace.log_likelihood[-1] > trace.log_likelihood[0]

    def test_budget_respected(self):
        data, centers = gaussian_mixture_dataset(seed=5)
        trace = perturbed_em(
            data, initial_state(centers, jitter=2.0, seed=5),
            UniformFast(0.69, 3), max_iterations=10,
            rng=np.random.default_rng(6),
        )
        assert trace.iterations == 3  # UF bound enforced

    def test_greedy_strategy_plugs_in(self):
        """The Chiaroscuro budget machinery carries over unchanged."""
        data, centers = gaussian_mixture_dataset(seed=7, scale=10**5)
        trace = perturbed_em(
            data, initial_state(centers, jitter=2.0, seed=7),
            Greedy(0.69), max_iterations=6,
            rng=np.random.default_rng(8),
        )
        assert 1 <= trace.iterations <= 6
        assert all(1 <= n <= 3 for n in trace.n_components)

    def test_heavy_noise_loses_components(self):
        """Small effective population → components die like centroids do."""
        data, centers = gaussian_mixture_dataset(seed=9, scale=1)
        trace = perturbed_em(
            data, initial_state(centers, jitter=2.0, seed=9),
            Greedy(0.69), max_iterations=8,
            rng=np.random.default_rng(10),
        )
        # Either the run broke off early or components were lost.
        assert trace.iterations < 8 or min(trace.n_components) < 3

    def test_weights_normalized(self):
        data, centers = gaussian_mixture_dataset(seed=11, scale=10**6)
        trace = perturbed_em(
            data, initial_state(centers, jitter=2.0, seed=11),
            UniformFast(0.69, 3), max_iterations=3,
            rng=np.random.default_rng(12),
        )
        for state in trace.states:
            assert state.weights.sum() == pytest.approx(1.0)
            assert (state.variances > 0).all()
