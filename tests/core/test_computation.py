"""Direct unit tests of the Algorithm 3 computation step."""

import random

import numpy as np
import pytest

from repro.core import ComputationStep, NoisePlan
from repro.core.diptych import initialize_means
from repro.crypto import FixedPointCodec
from repro.gossip import GossipEngine


@pytest.fixture()
def tiny_setup(threshold_keypair_s2):
    """8 nodes, k = 2, series length 3, negligible noise."""
    keypair = threshold_keypair_s2
    codec = FixedPointCodec(keypair.public, fractional_bits=20)
    crypto_rng = random.Random(0)
    series = np.array(
        [[1.0, 2, 3], [1, 2, 3], [1, 2, 3], [1, 2, 3],
         [10, 20, 30], [10, 20, 30], [10, 20, 30], [10, 20, 30]]
    )
    assignments = [0, 0, 0, 0, 1, 1, 1, 1]
    vectors = {}
    for node, (row, cluster) in enumerate(zip(series, assignments)):
        means = initialize_means(keypair.public, codec, row, cluster, 2, crypto_rng)
        flat = []
        for mean in means:
            flat.extend(mean.as_vector())
        vectors[node] = flat
    plan = NoisePlan(
        k=2, series_length=3, dmin=0.0, dmax=30.0, epsilon=1e9, n_nu=8
    )
    step = ComputationStep(
        keypair=keypair, codec=codec, noise_plan=plan, exchanges=15,
        crypto_rng=crypto_rng, noise_rng=np.random.default_rng(1),
    )
    return step, vectors, series


class TestComputationStep:
    def test_every_node_decodes(self, tiny_setup):
        step, vectors, _ = tiny_setup
        engine = GossipEngine(8, seed=7)
        output = step.run(engine, vectors)
        assert set(output.sums) == set(range(8))

    def test_sums_and_counts_match_truth(self, tiny_setup):
        step, vectors, series = tiny_setup
        engine = GossipEngine(8, seed=8)
        output = step.run(engine, vectors)
        for node in range(8):
            means, counts = output.perturbed_means(node)
            assert counts[0] == pytest.approx(4.0, abs=0.05)
            assert counts[1] == pytest.approx(4.0, abs=0.05)
            assert np.allclose(means[0], [1.0, 2.0, 3.0], atol=0.1)
            assert np.allclose(means[1], [10.0, 20.0, 30.0], atol=0.3)

    def test_agreement_small(self, tiny_setup):
        step, vectors, _ = tiny_setup
        engine = GossipEngine(8, seed=9)
        output = step.run(engine, vectors)
        assert output.agreement() < 1e-2

    def test_noise_plan_dimensions_respected(self, tiny_setup):
        step, vectors, _ = tiny_setup
        assert all(len(v) == step.noise_plan.dimensions for v in vectors.values())
