"""Tests for the circular SMA smoothing (Sec. 5.2)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.core import sma_smooth


class TestSMA:
    def test_constant_series_unchanged(self):
        means = np.full((3, 12), 7.0)
        assert np.allclose(sma_smooth(means, 4), 7.0)

    def test_window_zero_identity(self):
        means = np.arange(12.0).reshape(2, 6)
        out = sma_smooth(means, 0)
        assert np.array_equal(out, means)
        out[0, 0] = 99  # must be a copy
        assert means[0, 0] == 0.0

    def test_hand_computed_circular(self):
        series = np.array([10.0, 0.0, 0.0, 0.0])
        # window 2 → average of j−1, j, j+1 (mod 4)
        out = sma_smooth(series, 2)
        assert np.allclose(out, [10 / 3, 10 / 3, 0.0, 10 / 3])

    def test_reduces_iid_noise_variance(self):
        rng = np.random.default_rng(0)
        noise = rng.laplace(0, 1.0, size=(50, 24))
        smoothed = sma_smooth(noise, 4)
        assert smoothed.var() < noise.var() / 2.5  # ~1/(w+1) reduction

    def test_preserves_mean(self):
        """Circular averaging conserves the series total."""
        rng = np.random.default_rng(1)
        means = rng.normal(size=(4, 10))
        smoothed = sma_smooth(means, 4)
        assert np.allclose(smoothed.sum(axis=1), means.sum(axis=1))

    def test_odd_window_rejected(self):
        with pytest.raises(ValueError):
            sma_smooth(np.zeros((2, 8)), 3)

    def test_window_too_large(self):
        with pytest.raises(ValueError):
            sma_smooth(np.zeros((2, 4)), 4)

    def test_1d_and_2d_agree(self):
        rng = np.random.default_rng(2)
        row = rng.normal(size=10)
        assert np.allclose(sma_smooth(row, 2), sma_smooth(row[None, :], 2)[0])

    @settings(max_examples=30, deadline=None)
    @given(
        means=hnp.arrays(np.float64, (2, 12), elements=st.floats(-100, 100, allow_nan=False)),
        shift=st.integers(min_value=0, max_value=11),
    )
    def test_circular_shift_equivariance(self, means, shift):
        """Smoothing commutes with circular shifts — the defining property
        of the modulo-n indexing the paper specifies."""
        direct = np.roll(sma_smooth(means, 4), shift, axis=1)
        shifted = sma_smooth(np.roll(means, shift, axis=1), 4)
        assert np.allclose(direct, shifted, atol=1e-9)


class TestDeriveWindow:
    """Regression: one shared SMA-window derivation for every plane.

    ``perturbed_kmeans`` used to re-implement the Table 2 window inline
    with a different guard (``n > window`` vs protocol.py's
    ``0 < window < n``); both now route through
    :func:`repro.core.derive_sma_window` and the unified gate.  These
    tests pin the derivation — and the quality plane's behavior at short
    series lengths — to the historical values.
    """

    def test_matches_historical_inline_derivation(self):
        from repro.core import derive_sma_window

        for n in range(1, 101):
            w = int(round(0.2 * n))
            expected = w if w % 2 == 0 else w - 1  # the old inline code
            assert derive_sma_window(n) == expected, n

    def test_params_method_delegates(self):
        from repro.core import ChiaroscuroParams, derive_sma_window

        params = ChiaroscuroParams(smoothing_fraction=0.3)
        for n in (1, 5, 6, 24, 47):
            assert params.smoothing_window(n) == derive_sma_window(n, 0.3)

    @pytest.mark.parametrize("n", [2, 3, 4, 5, 6, 8, 12, 24])
    def test_quality_plane_short_series_behavior_pinned(self, n):
        """At short lengths the derived window collapses to 0 (< 8) or 2;
        the run must apply smoothing exactly when 0 < w < n — identical to
        the old ``dataset.n > smoothing_window`` guard."""
        from repro.core import derive_sma_window, perturbed_kmeans
        from repro.datasets import TimeSeriesSet
        from repro.privacy import UniformFast

        rng = np.random.default_rng(n)
        values = np.clip(rng.normal(10.0, 2.0, size=(40, n)), 0.0, 20.0)
        dataset = TimeSeriesSet(values, 0.0, 20.0)
        init = np.clip(rng.normal(10.0, 2.0, size=(2, n)), 0.0, 20.0)

        result = perturbed_kmeans(
            dataset, init, UniformFast(100.0, 1), max_iterations=1,
            rng=np.random.default_rng(0),
        )
        window = derive_sma_window(n)
        assert result.smoothing is (0 < window < n)

        # Bit-for-bit: smoothing on vs off must split exactly at w = 0,
        # i.e. the smoothed run equals an explicitly-unsmoothed run iff
        # the derived window is inapplicable.
        from repro.core import PerturbationOptions

        unsmoothed = perturbed_kmeans(
            dataset, init, UniformFast(100.0, 1), max_iterations=1,
            options=PerturbationOptions(smoothing=False),
            rng=np.random.default_rng(0),
        )
        same = np.array_equal(result.centroids, unsmoothed.centroids)
        assert same is not (0 < window < n)
