"""Tests for the footnote-9 quality-driven termination criterion."""

import numpy as np
import pytest

from repro.clustering import assign_to_closest, compute_means, inter_inertia
from repro.core import QualityMonitor, perturbed_kmeans
from repro.datasets import courbogen_like_centroids, generate_cer
from repro.privacy import Greedy


class TestInterInertiaFromReleases:
    def test_matches_definition1(self):
        """The monitor's public-quantity formula equals Def. 1 inter inertia."""
        rng = np.random.default_rng(0)
        series = rng.normal(size=(100, 4)) + rng.integers(0, 3, 100)[:, None] * 8.0
        centroids = rng.normal(size=(3, 4))
        labels = assign_to_closest(series, centroids)
        means, counts = compute_means(series, labels, 3)
        monitor = QualityMonitor(
            global_centroid=series.mean(axis=0), total_count=float(len(series))
        )
        assert monitor.inter_inertia(np.nan_to_num(means), counts) == pytest.approx(
            inter_inertia(series, np.nan_to_num(means), labels)
        )

    def test_negative_counts_clipped(self):
        monitor = QualityMonitor(global_centroid=np.zeros(2), total_count=10.0)
        value = monitor.inter_inertia(np.ones((2, 2)), np.array([5.0, -3.0]))
        assert value == pytest.approx(5.0 / 10.0 * 2.0)


class TestStoppingRule:
    def _monitor(self, patience=1):
        return QualityMonitor(
            global_centroid=np.zeros(2), total_count=100.0, patience=patience
        )

    def test_never_stops_while_improving(self):
        monitor = self._monitor()
        for spread in (1.0, 2.0, 3.0, 4.0):
            means = np.array([[spread, 0.0], [-spread, 0.0]])
            assert not monitor.observe(means, np.array([50.0, 50.0]))

    def test_stops_on_first_drop(self):
        monitor = self._monitor()
        good = np.array([[3.0, 0.0], [-3.0, 0.0]])
        bad = np.array([[0.5, 0.0], [-0.5, 0.0]])
        assert not monitor.observe(good, np.array([50.0, 50.0]))
        assert monitor.observe(bad, np.array([50.0, 50.0]))

    def test_patience_two(self):
        monitor = self._monitor(patience=2)
        good = np.array([[3.0, 0.0], [-3.0, 0.0]])
        bad = np.array([[0.5, 0.0], [-0.5, 0.0]])
        monitor.observe(good, np.array([50.0, 50.0]))
        assert not monitor.observe(bad, np.array([50.0, 50.0]))
        assert monitor.observe(bad, np.array([50.0, 50.0]))

    def test_recovery_resets_patience(self):
        monitor = self._monitor(patience=2)
        levels = [3.0, 1.0, 4.0, 1.0]  # drop, recover above best, drop
        stops = [
            monitor.observe(
                np.array([[lvl, 0.0], [-lvl, 0.0]]), np.array([50.0, 50.0])
            )
            for lvl in levels
        ]
        assert stops == [False, False, False, False]

    def test_best_iteration(self):
        monitor = self._monitor()
        for lvl in (1.0, 5.0, 2.0):
            monitor.observe(np.array([[lvl, 0.0], [-lvl, 0.0]]), np.array([50.0, 50.0]))
        assert monitor.best_iteration == 2

    def test_best_iteration_empty(self):
        with pytest.raises(ValueError):
            _ = self._monitor().best_iteration

    def test_validation(self):
        with pytest.raises(ValueError):
            QualityMonitor(global_centroid=np.zeros(2), total_count=0.0)
        with pytest.raises(ValueError):
            QualityMonitor(global_centroid=np.zeros(2), total_count=1.0, patience=0)


class TestOnPerturbedRun:
    def test_monitor_flags_the_noise_collapse(self):
        """Fed a GREEDY run's releases, the monitor stops near where the
        pre-perturbation inertia curve turns — the footnote-9 behaviour."""
        data = generate_cer(n_series=5000, population_scale=100, seed=21)
        init = courbogen_like_centroids(15, np.random.default_rng(21))
        result = perturbed_kmeans(
            data, init, Greedy(0.69), max_iterations=10,
            rng=np.random.default_rng(22),
        )
        monitor = QualityMonitor(
            global_centroid=data.values.mean(axis=0),
            total_count=float(data.t) * data.population_scale,
            patience=2,
        )
        stop_at = None
        for stats in result.history:
            counts = np.full(stats.n_centroids, data.population / stats.n_centroids)
            if monitor.observe(stats.centroids, counts) and stop_at is None:
                stop_at = stats.iteration
        curve = result.pre_inertia_curve
        collapse = int(np.argmin(curve)) + 1
        assert stop_at is not None
        assert stop_at >= collapse - 1  # does not stop before quality peaks
