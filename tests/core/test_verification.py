"""Tests for the Sec. 4.4 malicious-attacker countermeasures."""

import hmac

import numpy as np
import pytest

import repro.core.verification as verification_module
from repro.core import DecryptionCrossCheck, DeviceRegistry


class TestDeviceRegistry:
    def test_valid_token_enrolls(self):
        registry = DeviceRegistry(secret=b"registrar-secret")
        token = registry.token_for(7)
        slot = registry.enroll(7, token)
        assert registry.is_authorized(7)
        assert slot == 0

    def test_invalid_token_rejected(self):
        registry = DeviceRegistry(secret=b"registrar-secret")
        with pytest.raises(PermissionError):
            registry.enroll(7, "deadbeef" * 8)
        assert not registry.is_authorized(7)

    def test_token_bound_to_device(self):
        registry = DeviceRegistry(secret=b"registrar-secret")
        token_for_3 = registry.token_for(3)
        with pytest.raises(PermissionError):
            registry.enroll(4, token_for_3)

    def test_idempotent_slots(self):
        registry = DeviceRegistry(secret=b"s")
        first = registry.enroll(1, registry.token_for(1))
        second = registry.enroll(1, registry.token_for(1))
        assert first == second

    def test_distinct_slots(self):
        registry = DeviceRegistry(secret=b"s")
        slots = [registry.enroll(i, registry.token_for(i)) for i in range(5)]
        assert slots == [0, 1, 2, 3, 4]

    def test_different_secrets_different_tokens(self):
        a = DeviceRegistry(secret=b"a")
        b = DeviceRegistry(secret=b"b")
        assert a.token_for(1) != b.token_for(1)

    def test_near_miss_token_rejected(self):
        """A token differing in a single hex digit never enrolls."""
        registry = DeviceRegistry(secret=b"registrar-secret")
        token = registry.token_for(5)
        flipped = ("0" if token[-1] != "0" else "1") + token[1:]
        near_miss = token[:-1] + ("0" if token[-1] != "0" else "1")
        for forged in (flipped, near_miss, token[:-1], token + "0"):
            with pytest.raises(PermissionError):
                registry.enroll(5, forged)
        assert not registry.is_authorized(5)

    def test_comparison_goes_through_compare_digest(self, monkeypatch):
        """Regression: token checks must stay on the constant-time
        comparator, never drift back to ``==`` (timing side channel)."""
        calls = []
        real = hmac.compare_digest

        def spying(a, b):
            calls.append((a, b))
            return real(a, b)

        monkeypatch.setattr(
            verification_module.hmac, "compare_digest", spying
        )
        registry = DeviceRegistry(secret=b"registrar-secret")
        registry.enroll(3, registry.token_for(3))
        with pytest.raises(PermissionError):
            registry.enroll(4, registry.token_for(3))
        assert len(calls) == 2  # one comparison per enroll attempt


class TestDecryptionCrossCheck:
    def test_all_honest_clean(self):
        rng = np.random.default_rng(0)
        truth = rng.normal(size=6) * 100
        reports = {i: truth * (1 + rng.uniform(-1e-6, 1e-6, 6)) for i in range(10)}
        report = DecryptionCrossCheck(relative_tolerance=1e-4).check(reports)
        assert report.clean
        assert len(report.agreeing) == 10

    def test_single_liar_flagged(self):
        truth = np.array([100.0, -50.0, 25.0])
        reports = {i: truth.copy() for i in range(9)}
        reports[4] = truth * 1.5  # the lying participant
        report = DecryptionCrossCheck(relative_tolerance=1e-3).check(reports)
        assert report.deviating == [4]
        assert 4 not in report.agreeing

    def test_median_reference_resists_minority(self):
        """Up to just under half the population lying does not move the
        reference onto the liars' value."""
        truth = np.array([10.0, 10.0])
        reports = {i: truth.copy() for i in range(6)}
        for i in range(6, 10):
            reports[i] = np.array([99.0, 99.0])
        report = DecryptionCrossCheck(relative_tolerance=1e-3).check(reports)
        assert sorted(report.deviating) == [6, 7, 8, 9]
        assert np.allclose(report.reference, truth)

    def test_benign_gossip_spread_tolerated(self):
        """The epidemic approximation error (≤ e_max) must not raise alarms."""
        rng = np.random.default_rng(1)
        truth = np.array([1000.0, 2000.0])
        e_max = 1e-6
        reports = {
            i: truth * (1 + rng.uniform(-e_max, e_max, 2)) for i in range(20)
        }
        report = DecryptionCrossCheck(relative_tolerance=1e-3).check(reports)
        assert report.clean
        assert report.max_benign_spread <= 2 * e_max

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            DecryptionCrossCheck().check({})

    def test_invalid_tolerance(self):
        with pytest.raises(ValueError):
            DecryptionCrossCheck(relative_tolerance=0.0)


class TestNonFiniteDigests:
    """A NaN compares false against any tolerance — without an explicit
    gate a poisoned report would land in neither bucket."""

    def test_nan_report_flagged_as_deviating(self):
        truth = np.array([10.0, 20.0, 30.0])
        reports = {i: truth.copy() for i in range(8)}
        reports[3] = np.array([10.0, np.nan, 30.0])
        report = DecryptionCrossCheck(relative_tolerance=1e-3).check(reports)
        assert report.deviating == [3]
        assert report.non_finite == [3]
        assert 3 not in report.agreeing
        assert not report.clean

    def test_inf_report_flagged_as_deviating(self):
        truth = np.array([10.0, 20.0])
        reports = {i: truth.copy() for i in range(6)}
        reports[0] = np.array([np.inf, 20.0])
        reports[5] = np.array([10.0, -np.inf])
        report = DecryptionCrossCheck(relative_tolerance=1e-3).check(reports)
        assert report.deviating == [0, 5]
        assert report.non_finite == [0, 5]

    def test_non_finite_excluded_from_reference(self):
        """Poisoned reports must not drag the median; the reference stays
        the honest value."""
        truth = np.array([100.0, 200.0])
        reports = {i: truth.copy() for i in range(5)}
        for i in range(5, 9):
            reports[i] = np.full(2, np.nan)
        report = DecryptionCrossCheck(relative_tolerance=1e-3).check(reports)
        assert np.array_equal(report.reference, truth)
        assert sorted(report.deviating) == [5, 6, 7, 8]

    def test_non_finite_is_subset_of_deviating(self):
        rng = np.random.default_rng(0)
        reports = {}
        for i in range(12):
            vector = rng.normal(size=4) * 100
            if i % 3 == 0:
                vector[i % 4] = np.nan
            if i % 5 == 0:
                vector *= 10  # also numerically deviant
            reports[i] = vector
        report = DecryptionCrossCheck(relative_tolerance=1e-2).check(reports)
        assert set(report.non_finite) <= set(report.deviating)

    def test_all_non_finite_fails_loudly(self):
        reports = {i: np.full(3, np.nan) for i in range(4)}
        with pytest.raises(ValueError, match="non-finite"):
            DecryptionCrossCheck().check(reports)

    def test_all_non_finite_error_truncates_participant_list(self):
        reports = {i: np.array([np.inf]) for i in range(40)}
        with pytest.raises(ValueError, match=r"\+24 more"):
            DecryptionCrossCheck().check(reports)
