"""Tests for the Sec. 4.4 malicious-attacker countermeasures."""

import numpy as np
import pytest

from repro.core import DecryptionCrossCheck, DeviceRegistry


class TestDeviceRegistry:
    def test_valid_token_enrolls(self):
        registry = DeviceRegistry(secret=b"registrar-secret")
        token = registry.token_for(7)
        slot = registry.enroll(7, token)
        assert registry.is_authorized(7)
        assert slot == 0

    def test_invalid_token_rejected(self):
        registry = DeviceRegistry(secret=b"registrar-secret")
        with pytest.raises(PermissionError):
            registry.enroll(7, "deadbeef" * 8)
        assert not registry.is_authorized(7)

    def test_token_bound_to_device(self):
        registry = DeviceRegistry(secret=b"registrar-secret")
        token_for_3 = registry.token_for(3)
        with pytest.raises(PermissionError):
            registry.enroll(4, token_for_3)

    def test_idempotent_slots(self):
        registry = DeviceRegistry(secret=b"s")
        first = registry.enroll(1, registry.token_for(1))
        second = registry.enroll(1, registry.token_for(1))
        assert first == second

    def test_distinct_slots(self):
        registry = DeviceRegistry(secret=b"s")
        slots = [registry.enroll(i, registry.token_for(i)) for i in range(5)]
        assert slots == [0, 1, 2, 3, 4]

    def test_different_secrets_different_tokens(self):
        a = DeviceRegistry(secret=b"a")
        b = DeviceRegistry(secret=b"b")
        assert a.token_for(1) != b.token_for(1)


class TestDecryptionCrossCheck:
    def test_all_honest_clean(self):
        rng = np.random.default_rng(0)
        truth = rng.normal(size=6) * 100
        reports = {i: truth * (1 + rng.uniform(-1e-6, 1e-6, 6)) for i in range(10)}
        report = DecryptionCrossCheck(relative_tolerance=1e-4).check(reports)
        assert report.clean
        assert len(report.agreeing) == 10

    def test_single_liar_flagged(self):
        truth = np.array([100.0, -50.0, 25.0])
        reports = {i: truth.copy() for i in range(9)}
        reports[4] = truth * 1.5  # the lying participant
        report = DecryptionCrossCheck(relative_tolerance=1e-3).check(reports)
        assert report.deviating == [4]
        assert 4 not in report.agreeing

    def test_median_reference_resists_minority(self):
        """Up to just under half the population lying does not move the
        reference onto the liars' value."""
        truth = np.array([10.0, 10.0])
        reports = {i: truth.copy() for i in range(6)}
        for i in range(6, 10):
            reports[i] = np.array([99.0, 99.0])
        report = DecryptionCrossCheck(relative_tolerance=1e-3).check(reports)
        assert sorted(report.deviating) == [6, 7, 8, 9]
        assert np.allclose(report.reference, truth)

    def test_benign_gossip_spread_tolerated(self):
        """The epidemic approximation error (≤ e_max) must not raise alarms."""
        rng = np.random.default_rng(1)
        truth = np.array([1000.0, 2000.0])
        e_max = 1e-6
        reports = {
            i: truth * (1 + rng.uniform(-e_max, e_max, 2)) for i in range(20)
        }
        report = DecryptionCrossCheck(relative_tolerance=1e-3).check(reports)
        assert report.clean
        assert report.max_benign_spread <= 2 * e_max

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            DecryptionCrossCheck().check({})

    def test_invalid_tolerance(self):
        with pytest.raises(ValueError):
            DecryptionCrossCheck(relative_tolerance=0.0)
