"""Tests for the perturbed centralized k-means quality plane."""

import numpy as np
import pytest

from repro.clustering import lloyd_kmeans
from repro.core import PerturbationOptions, perturbed_kmeans
from repro.datasets import TimeSeriesSet, generate_cer, courbogen_like_centroids
from repro.privacy import Greedy, UniformFast


@pytest.fixture(scope="module")
def cer_small():
    return generate_cer(n_series=4000, population_scale=500, seed=7)


@pytest.fixture(scope="module")
def cer_init():
    return courbogen_like_centroids(15, np.random.default_rng(7))


class TestBasicRun:
    def test_history_recorded(self, cer_small, cer_init):
        result = perturbed_kmeans(
            cer_small, cer_init, Greedy(0.69), max_iterations=5,
            rng=np.random.default_rng(0),
        )
        assert result.iterations == 5
        for stats in result.history:
            assert stats.pre_inertia > 0
            assert stats.post_inertia > 0
            assert 1 <= stats.n_centroids <= 15
            assert stats.epsilon_spent > 0

    def test_uf_stops_at_bound(self, cer_small, cer_init):
        result = perturbed_kmeans(
            cer_small, cer_init, UniformFast(0.69, 3), max_iterations=10,
            rng=np.random.default_rng(1),
        )
        assert result.iterations == 3

    def test_budget_never_exceeded(self, cer_small, cer_init):
        result = perturbed_kmeans(
            cer_small, cer_init, Greedy(0.69), max_iterations=10,
            rng=np.random.default_rng(2),
        )
        assert sum(s.epsilon_spent for s in result.history) <= 0.69 + 1e-9

    def test_labels_and_smoothing_flags(self, cer_small, cer_init):
        smooth = perturbed_kmeans(
            cer_small, cer_init, Greedy(0.69), max_iterations=2,
            rng=np.random.default_rng(3),
        )
        raw = perturbed_kmeans(
            cer_small, cer_init, Greedy(0.69), max_iterations=2,
            options=PerturbationOptions(smoothing=False),
            rng=np.random.default_rng(3),
        )
        assert smooth.label == "G_SMA"
        assert raw.label == "G"

    def test_zero_noise_limit_matches_lloyd(self, cer_small, cer_init):
        """With an enormous ε the perturbed run tracks plain Lloyd."""
        result = perturbed_kmeans(
            cer_small, cer_init, UniformFast(1e9, 4), max_iterations=4,
            options=PerturbationOptions(smoothing=False),
            rng=np.random.default_rng(4),
        )
        baseline = lloyd_kmeans(cer_small.values, cer_init, max_iterations=4)
        assert result.pre_inertia_curve[-1] == pytest.approx(
            baseline.inertia[-1], rel=0.02
        )


class TestPaperShapes:
    """The qualitative Fig. 2 facts, on the synthetic CER-like workload."""

    def test_noise_eventually_overwhelms_greedy(self, cer_small, cer_init):
        result = perturbed_kmeans(
            cer_small, cer_init, Greedy(0.69), max_iterations=10,
            rng=np.random.default_rng(5),
        )
        curve = result.pre_inertia_curve
        assert min(curve) < curve[-1]  # quality degrades by the end

    def test_centroids_get_lost(self, cer_small, cer_init):
        result = perturbed_kmeans(
            cer_small, cer_init, Greedy(0.69), max_iterations=10,
            rng=np.random.default_rng(6),
        )
        counts = result.n_centroids_curve
        assert counts[-1] < counts[0]

    def test_smoothing_helps_late_iterations(self, cer_small, cer_init):
        seeds = range(3)
        raw_tail, smooth_tail = [], []
        for seed in seeds:
            raw = perturbed_kmeans(
                cer_small, cer_init, Greedy(0.69), max_iterations=8,
                options=PerturbationOptions(smoothing=False),
                rng=np.random.default_rng(100 + seed),
            )
            smooth = perturbed_kmeans(
                cer_small, cer_init, Greedy(0.69), max_iterations=8,
                options=PerturbationOptions(smoothing=True),
                rng=np.random.default_rng(100 + seed),
            )
            raw_tail.append(np.mean(raw.pre_inertia_curve[4:]))
            smooth_tail.append(np.mean(smooth.pre_inertia_curve[4:]))
        assert np.mean(smooth_tail) <= np.mean(raw_tail) * 1.05

    def test_best_iteration_selector(self, cer_small, cer_init):
        result = perturbed_kmeans(
            cer_small, cer_init, Greedy(0.69), max_iterations=6,
            rng=np.random.default_rng(8),
        )
        best = result.best_iteration()
        assert best.pre_inertia == min(result.pre_inertia_curve)


class TestChurnAndOptions:
    def test_churn_run_completes(self, cer_small, cer_init):
        result = perturbed_kmeans(
            cer_small, cer_init, Greedy(0.69), max_iterations=5,
            churn=0.5, rng=np.random.default_rng(9),
        )
        assert result.iterations >= 1

    def test_gossip_error_model(self, cer_small, cer_init):
        result = perturbed_kmeans(
            cer_small, cer_init, Greedy(0.69), max_iterations=3,
            options=PerturbationOptions(gossip_e_max=1e-3),
            rng=np.random.default_rng(10),
        )
        assert result.iterations == 3

    def test_sensitivity_modes(self, cer_small, cer_init):
        for mode in ("per-aggregate", "joint", "split"):
            result = perturbed_kmeans(
                cer_small, cer_init, UniformFast(0.69, 2), max_iterations=2,
                options=PerturbationOptions(sensitivity_mode=mode),
                rng=np.random.default_rng(11),
            )
            assert result.iterations >= 1

    def test_invalid_mode(self):
        with pytest.raises(ValueError):
            PerturbationOptions(sensitivity_mode="bogus")

    def test_population_scale_reduces_noise_impact(self, cer_init):
        """More effective individuals → relatively less DP damage (the
        scaling argument of DESIGN.md)."""
        damage = {}
        for scale in (1, 1000):
            data = generate_cer(n_series=3000, population_scale=scale, seed=12)
            result = perturbed_kmeans(
                data, cer_init, UniformFast(0.69, 5), max_iterations=5,
                rng=np.random.default_rng(13),
            )
            baseline = lloyd_kmeans(data.values, cer_init, max_iterations=5)
            damage[scale] = result.pre_inertia_curve[-1] - baseline.inertia[-1]
        assert damage[1000] < damage[1]
