"""RunSpec.faults: validation, serialization, and registry plumbing."""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import FaultSpec, RunSpec
from repro.faults import (
    FAULTS,
    ByzantineFault,
    ChurnStormFault,
    CollusionFault,
    NetworkFault,
    build_fault,
    fault_rng,
)


def vec_spec_dict(**overrides) -> dict:
    d = {
        "plane": "vectorized",
        "seed": 7,
        "strategy": "UF2",
        "dataset": {"kind": "points2d",
                    "params": {"n_clusters": 4, "points_per_cluster": 6,
                               "duplications": 1}},
        "init": {"kind": "sample"},
        "params": {"k": 3, "max_iterations": 2, "epsilon": 100.0,
                   "theta": 0.0},
    }
    d.update(overrides)
    return d


class TestRegistry:
    def test_builtin_kinds_registered(self):
        assert {"network", "byzantine", "collusion", "churn-storm"} <= set(
            FAULTS.keys()
        )

    def test_build_fault_constructs_config(self):
        config = build_fault("network", {"loss": 0.25})
        assert isinstance(config, NetworkFault)
        assert config.loss == 0.25

    def test_build_fault_unknown_kind(self):
        with pytest.raises(KeyError):
            build_fault("cosmic-rays", {})

    def test_build_fault_bad_params(self):
        with pytest.raises(ValueError):
            build_fault("network", {"bandwidth": 56})  # unknown knob
        with pytest.raises(ValueError):
            build_fault("network", {"loss": 1.5})  # out of range


class TestFaultConfigValidation:
    def test_network_ranges(self):
        with pytest.raises(ValueError):
            NetworkFault(loss=-0.1)
        with pytest.raises(ValueError):
            NetworkFault(duplicate=1.0)
        with pytest.raises(ValueError):
            NetworkFault(delay=0.1, max_delay=0)

    def test_byzantine_needs_a_subset(self):
        with pytest.raises(ValueError):
            ByzantineFault()
        with pytest.raises(ValueError):
            ByzantineFault(fraction=0.1, mode="jamming")
        with pytest.raises(ValueError):
            ByzantineFault(fraction=0.1, mode="tamper", scale=0.0)

    def test_collusion_needs_a_coalition(self):
        with pytest.raises(ValueError):
            CollusionFault()
        with pytest.raises(ValueError):
            CollusionFault(collusions=-1)
        with pytest.raises(ValueError):
            CollusionFault(fraction=1.5)

    def test_storm_delegates_to_churn_process(self):
        with pytest.raises(ValueError):
            ChurnStormFault(rate=1.5)
        with pytest.raises(ValueError):
            ChurnStormFault(magnitude=0.0)
        with pytest.raises(ValueError):
            ChurnStormFault(duration=0)


class TestSpecIntegration:
    def test_faults_accepted_on_protocol_planes(self):
        spec = RunSpec.from_dict(vec_spec_dict(
            faults=[{"kind": "network", "params": {"loss": 0.1}}],
        ))
        assert spec.faults == (FaultSpec("network", {"loss": 0.1}),)

    def test_faults_rejected_on_quality_plane(self):
        with pytest.raises(ValueError, match="protocol plane"):
            RunSpec.from_dict(vec_spec_dict(
                plane="quality",
                faults=[{"kind": "network", "params": {"loss": 0.1}}],
            ))

    def test_unknown_fault_kind_rejected_at_spec_time(self):
        with pytest.raises(ValueError):
            RunSpec.from_dict(vec_spec_dict(
                faults=[{"kind": "cosmic-rays", "params": {}}],
            ))

    def test_bad_fault_params_rejected_at_spec_time(self):
        with pytest.raises(ValueError):
            RunSpec.from_dict(vec_spec_dict(
                faults=[{"kind": "byzantine", "params": {"fraction": 2.0}}],
            ))

    def test_round_trip_preserves_faults(self):
        spec = RunSpec.from_dict(vec_spec_dict(faults=[
            {"kind": "network", "params": {"loss": 0.2, "delay": 0.1}},
            {"kind": "byzantine",
             "params": {"fraction": 0.1, "mode": "tamper", "scale": 0.5}},
        ]))
        again = RunSpec.from_json(spec.to_json())
        assert again == spec
        assert again.to_dict() == spec.to_dict()

    def test_empty_faults_serialize_to_nothing(self):
        """Fault-free specs keep their pre-fault-plane serialization, so
        checkpoint spec-identity comparisons keep working."""
        without_key = RunSpec.from_dict(vec_spec_dict())
        with_empty = RunSpec.from_dict(vec_spec_dict(faults=[]))
        assert "faults" not in without_key.to_dict()
        assert with_empty.to_dict() == without_key.to_dict()
        assert with_empty == without_key


class TestFaultRng:
    def test_streams_are_deterministic(self):
        a = fault_rng(42, "network", 0).random(8)
        b = fault_rng(42, "network", 0).random(8)
        assert np.array_equal(a, b)

    def test_streams_are_independent(self):
        base = fault_rng(42, "network", 0).random(8)
        other_kind = fault_rng(42, "byzantine", 0).random(8)
        other_index = fault_rng(42, "network", 1).random(8)
        other_seed = fault_rng(43, "network", 0).random(8)
        for stream in (other_kind, other_index, other_seed):
            assert not np.array_equal(base, stream)
