"""End-to-end fault injection through the Experiment API, both planes.

Every test drives a full hostile deployment through ``RunSpec.faults`` and
asserts on the *event stream*: detections carry the right detector, aborts
are clean (``RunCompleted(reason="aborted")``, never a stack trace), and
an empty faults block is bit-identical to no fault plane at all.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import (
    Experiment,
    FaultDetected,
    IterationCompleted,
    RunAborted,
    RunCompleted,
    RunSpec,
)


def toy_spec(toy_dataset, toy_initial_centroids, plane, faults=None,
             **param_overrides) -> RunSpec:
    """The tests/conftest toy workload (24 devices, 3 clusters) as a spec."""
    params = {"k": 3, "max_iterations": 2, "exchanges": 12,
              "tau_fraction": 0.13, "epsilon": 2000.0, "key_bits": 256,
              "expansion_s": 2, "use_smoothing": False, "theta": 0.0}
    params.update(param_overrides)
    d = {
        "name": "fault-toy",
        "seed": 3,
        "strategy": "UF2",
        "plane": plane,
        "dataset": {"kind": "timeseries",
                    "params": {"values": toy_dataset.values.tolist(),
                               "dmin": 0.0, "dmax": 60.0, "name": "toy"}},
        "init": {"kind": "matrix",
                 "params": {"values": toy_initial_centroids.tolist()}},
        "params": params,
    }
    if faults is not None:
        d["faults"] = faults
    return RunSpec.from_dict(d)


def run_events(spec, keypair):
    return list(Experiment.from_spec(spec, keypair=keypair).run_iter())


def detections(events, detector=None):
    found = [e for e in events if isinstance(e, FaultDetected)]
    if detector is not None:
        found = [e for e in found if e.detector == detector]
    return found


def final_reason(events):
    assert isinstance(events[-1], RunCompleted)
    return events[-1].reason


@pytest.mark.parametrize("plane", ["object", "vectorized"])
class TestBitIdentity:
    def test_empty_faults_block_is_bit_identical(
        self, plane, toy_dataset, toy_initial_centroids, threshold_keypair_s2
    ):
        """The tentpole determinism contract: declaring ``faults: []``
        changes nothing — not one bit of any released centroid."""
        without = toy_spec(toy_dataset, toy_initial_centroids, plane)
        with_empty = toy_spec(toy_dataset, toy_initial_centroids, plane,
                              faults=[])
        a = Experiment.from_spec(without, keypair=threshold_keypair_s2).run()
        b = Experiment.from_spec(with_empty, keypair=threshold_keypair_s2).run()
        assert np.array_equal(a.centroids, b.centroids)
        assert len(a.history) == len(b.history)
        for sa, sb in zip(a.history, b.history):
            assert np.array_equal(sa.centroids, sb.centroids)
            assert sa.post_inertia == sb.post_inertia


@pytest.mark.parametrize("plane", ["object", "vectorized"])
class TestNetworkFault:
    def test_lossy_network_degrades_but_completes(
        self, plane, toy_dataset, toy_initial_centroids, threshold_keypair_s2
    ):
        baseline = toy_spec(toy_dataset, toy_initial_centroids, plane)
        lossy = toy_spec(
            toy_dataset, toy_initial_centroids, plane,
            faults=[{"kind": "network",
                     "params": {"loss": 0.3, "duplicate": 0.1,
                                "delay": 0.1, "max_delay": 2}}],
        )
        base = Experiment.from_spec(baseline, keypair=threshold_keypair_s2).run()
        events = run_events(lossy, threshold_keypair_s2)
        assert final_reason(events) != "aborted"
        assert not detections(events)  # packet loss is not an *attack* signal
        iterations = [e for e in events if isinstance(e, IterationCompleted)]
        assert iterations, "a lossy network must still make progress"
        # the fault actually bit: the gossip trajectory diverged
        assert not np.array_equal(iterations[-1].stats.centroids, base.centroids)


class TestByzantineTamper:
    @pytest.mark.parametrize("plane", ["object", "vectorized"])
    def test_tampered_report_flagged_and_excluded(
        self, plane, toy_dataset, toy_initial_centroids, threshold_keypair_s2
    ):
        spec = toy_spec(
            toy_dataset, toy_initial_centroids, plane,
            faults=[{"kind": "byzantine",
                     "params": {"nodes": [0], "mode": "tamper",
                                "scale": 0.5}}],
        )
        events = run_events(spec, threshold_keypair_s2)
        flagged = detections(events, "decryption-cross-check")
        assert flagged, "a 50% scaled report must not pass the cross-check"
        assert 0 in flagged[0].participants
        assert final_reason(events) != "aborted"

    def test_abort_on_detect_escalates(
        self, toy_dataset, toy_initial_centroids, threshold_keypair_s2
    ):
        spec = toy_spec(
            toy_dataset, toy_initial_centroids, "vectorized",
            faults=[{"kind": "byzantine",
                     "params": {"nodes": [0], "mode": "tamper",
                                "scale": 0.5, "abort_on_detect": True}}],
        )
        events = run_events(spec, threshold_keypair_s2)
        aborts = [e for e in events if isinstance(e, RunAborted)]
        assert len(aborts) == 1
        assert aborts[0].fault == "byzantine"
        assert final_reason(events) == "aborted"


class TestByzantineReplay:
    def test_replayed_reports_detected_from_second_iteration(
        self, toy_dataset, toy_initial_centroids, threshold_keypair_s2
    ):
        spec = toy_spec(
            toy_dataset, toy_initial_centroids, "vectorized",
            faults=[{"kind": "byzantine",
                     "params": {"nodes": [2, 3], "mode": "replay"}}],
            max_iterations=3,
        )
        spec = spec.replace(strategy="UF3")
        events = run_events(spec, threshold_keypair_s2)
        flagged = detections(events, "decryption-cross-check")
        assert flagged, "stale replayed reports must deviate from the median"
        # iteration 1 has nothing to replay yet — detection starts at 2
        assert min(e.iteration for e in flagged) >= 2


class TestByzantineMalformed:
    def test_object_plane_rejects_at_exchange_boundary(
        self, toy_dataset, toy_initial_centroids, threshold_keypair_s2
    ):
        spec = toy_spec(
            toy_dataset, toy_initial_centroids, "object",
            faults=[{"kind": "byzantine",
                     "params": {"nodes": [5], "mode": "malformed",
                                "rate": 1.0}}],
        )
        events = run_events(spec, threshold_keypair_s2)
        guarded = detections(events, "exchange-guard")
        assert guarded, "a truncated EESum batch must be rejected on receipt"
        assert guarded[0].detail["mode"] == "malformed"

    def test_vectorized_nan_poison_aborts_cleanly(
        self, toy_dataset, toy_initial_centroids, threshold_keypair_s2
    ):
        spec = toy_spec(
            toy_dataset, toy_initial_centroids, "vectorized",
            faults=[{"kind": "byzantine",
                     "params": {"nodes": [1], "mode": "malformed"}}],
        )
        events = run_events(spec, threshold_keypair_s2)
        aborts = [e for e in events if isinstance(e, RunAborted)]
        assert len(aborts) == 1
        assert aborts[0].epsilon_charged > 0.0
        assert final_reason(events) == "aborted"
        assert detections(events, "decryption-cross-check")


class TestByzantineUnenrolled:
    @pytest.mark.parametrize("plane", ["object", "vectorized"])
    def test_forged_tokens_rejected_at_bootstrap(
        self, plane, toy_dataset, toy_initial_centroids, threshold_keypair_s2
    ):
        spec = toy_spec(
            toy_dataset, toy_initial_centroids, plane,
            faults=[{"kind": "byzantine",
                     "params": {"nodes": [7, 11], "mode": "unenrolled"}}],
        )
        events = run_events(spec, threshold_keypair_s2)
        rejected = detections(events, "device-registry")
        assert len(rejected) == 1
        assert rejected[0].iteration == 0  # bind time, before any gossip
        assert set(rejected[0].participants) == {7, 11}
        assert rejected[0].detail["rejected"] == 2
        assert rejected[0].detail["enrolled"] == 22
        assert final_reason(events) != "aborted"


class TestChurnStorm:
    @pytest.mark.parametrize("plane", ["object", "vectorized"])
    def test_storm_onsets_are_observable(
        self, plane, toy_dataset, toy_initial_centroids, threshold_keypair_s2
    ):
        spec = toy_spec(
            toy_dataset, toy_initial_centroids, plane,
            faults=[{"kind": "churn-storm",
                     "params": {"rate": 1.0, "magnitude": 0.25,
                                "duration": 2}}],
        )
        events = run_events(spec, threshold_keypair_s2)
        storms = detections(events, "availability-monitor")
        assert storms, "rate=1.0 must storm on the very first cycle"
        onset = storms[0]
        assert onset.detail["offline"] == 6  # 25% of 24
        assert onset.detail["duration_cycles"] == 2
        assert final_reason(events) != "aborted"


class TestCollusion:
    def test_below_threshold_coalition_cannot_decrypt(
        self, toy_dataset, toy_initial_centroids, threshold_keypair_s2
    ):
        """c = τ − 1 = 2: the empirical attack recovers garbage, matching
        the App. B.3 bound."""
        spec = toy_spec(
            toy_dataset, toy_initial_centroids, "object",
            faults=[{"kind": "collusion", "params": {"collusions": 2}}],
        )
        events = run_events(spec, threshold_keypair_s2)
        audits = detections(events, "coalition-audit")
        assert len(audits) == 1
        detail = audits[0].detail
        assert detail["threshold"] == 3
        assert detail["key_compromised"] is False
        assert detail["empirical_decryption"] is False
        assert detail["missing_key_shares"] == 1
        assert final_reason(events) != "aborted"

    def test_threshold_coalition_decrypts(
        self, toy_dataset, toy_initial_centroids, threshold_keypair_s2
    ):
        """c = τ = 3: the coalition's combination succeeds empirically."""
        spec = toy_spec(
            toy_dataset, toy_initial_centroids, "object",
            faults=[{"kind": "collusion", "params": {"collusions": 3}}],
        )
        events = run_events(spec, threshold_keypair_s2)
        detail = detections(events, "coalition-audit")[0].detail
        assert detail["key_compromised"] is True
        assert detail["empirical_decryption"] is True
        assert detail["missing_key_shares"] == 0
        assert final_reason(events) != "aborted"

    def test_vectorized_audit_is_analytical_only(
        self, toy_dataset, toy_initial_centroids, threshold_keypair_s2
    ):
        spec = toy_spec(
            toy_dataset, toy_initial_centroids, "vectorized",
            faults=[{"kind": "collusion", "params": {"fraction": 0.5}}],
        )
        events = run_events(spec, threshold_keypair_s2)
        detail = detections(events, "coalition-audit")[0].detail
        assert detail["collusions"] == 12
        assert detail["empirical_decryption"] is None  # no key material
        assert detail["unknown_noise_fraction"] == pytest.approx(0.5)
