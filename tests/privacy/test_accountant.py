"""Tests for the privacy accountant."""

import pytest

from repro.privacy import BudgetOverrun, PrivacyAccountant


class TestCharging:
    def test_simple_charge(self):
        acc = PrivacyAccountant(epsilon_budget=1.0)
        acc.charge(0.4)
        assert acc.spent == pytest.approx(0.4)
        assert acc.remaining == pytest.approx(0.6)

    def test_overrun_detected(self):
        acc = PrivacyAccountant(epsilon_budget=1.0)
        acc.charge(0.9)
        with pytest.raises(BudgetOverrun):
            acc.charge(0.2)

    def test_exact_spend_with_float_noise(self):
        """UNIFORM_FAST-style: n charges of ε/n must fit despite round-off."""
        acc = PrivacyAccountant(epsilon_budget=0.69)
        for _ in range(10):
            acc.charge(0.69 / 10)
        assert acc.remaining == pytest.approx(0.0, abs=1e-9)

    def test_invalid_charges(self):
        acc = PrivacyAccountant(epsilon_budget=1.0)
        with pytest.raises(ValueError):
            acc.charge(0.0)
        with pytest.raises(ValueError):
            acc.charge(0.1, n_values=0)


class TestDeltaComposition:
    def test_delta_power(self):
        acc = PrivacyAccountant(epsilon_budget=10.0, delta_atom=0.999)
        acc.charge(1.0, n_values=48)
        assert acc.delta_global == pytest.approx(0.999**48)

    def test_delta_one_stays_one(self):
        acc = PrivacyAccountant(epsilon_budget=10.0)
        acc.charge(1.0, n_values=100)
        assert acc.delta_global == 1.0
