"""Tests for the Appendix B.3 collusion analysis."""

import pytest

from repro.privacy import CollusionAnalysis


class TestCollusion:
    def test_paper_example(self):
        """One million participants, c colluders → (10⁶ − c)/10⁶ unknown."""
        analysis = CollusionAnalysis(
            population=10**6, n_shares=10**6, threshold=100, collusions=1000
        )
        assert analysis.unknown_noise_fraction == pytest.approx(0.999)

    def test_linear_decay(self):
        fractions = [
            CollusionAnalysis(1000, 1000, 10, c).unknown_noise_fraction
            for c in (0, 100, 200, 300)
        ]
        diffs = [a - b for a, b in zip(fractions, fractions[1:])]
        assert all(d == pytest.approx(0.1) for d in diffs)

    def test_key_compromise_boundary(self):
        below = CollusionAnalysis(100, 100, 10, 9)
        at = CollusionAnalysis(100, 100, 10, 10)
        assert not below.key_compromised and below.missing_key_shares == 1
        assert at.key_compromised and at.missing_key_shares == 0

    def test_residual_shape(self):
        analysis = CollusionAnalysis(100, 100, 5, 25)
        assert analysis.residual_noise_shape() == pytest.approx(0.75)

    def test_validation(self):
        with pytest.raises(ValueError):
            CollusionAnalysis(10, 10, 3, 11)
        with pytest.raises(ValueError):
            CollusionAnalysis(10, 10, 0, 1)
