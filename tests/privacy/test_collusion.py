"""Tests for the Appendix B.3 collusion analysis."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.privacy import CollusionAnalysis


class TestCollusion:
    def test_paper_example(self):
        """One million participants, c colluders → (10⁶ − c)/10⁶ unknown."""
        analysis = CollusionAnalysis(
            population=10**6, n_shares=10**6, threshold=100, collusions=1000
        )
        assert analysis.unknown_noise_fraction == pytest.approx(0.999)

    def test_linear_decay(self):
        fractions = [
            CollusionAnalysis(1000, 1000, 10, c).unknown_noise_fraction
            for c in (0, 100, 200, 300)
        ]
        diffs = [a - b for a, b in zip(fractions, fractions[1:])]
        assert all(d == pytest.approx(0.1) for d in diffs)

    def test_key_compromise_boundary(self):
        below = CollusionAnalysis(100, 100, 10, 9)
        at = CollusionAnalysis(100, 100, 10, 10)
        assert not below.key_compromised and below.missing_key_shares == 1
        assert at.key_compromised and at.missing_key_shares == 0

    def test_residual_shape(self):
        analysis = CollusionAnalysis(100, 100, 5, 25)
        assert analysis.residual_noise_shape() == pytest.approx(0.75)

    def test_validation(self):
        with pytest.raises(ValueError):
            CollusionAnalysis(10, 10, 3, 11)
        with pytest.raises(ValueError):
            CollusionAnalysis(10, 10, 0, 1)


class TestBoundaries:
    def test_coalition_exactly_at_threshold(self):
        """c == τ is the first compromised size — not one later."""
        at = CollusionAnalysis(50, 50, 7, 7)
        assert at.key_compromised
        assert at.missing_key_shares == 0
        assert at.unknown_noise_fraction == pytest.approx(43 / 50)

    def test_population_of_one(self):
        """The degenerate single-device population: the device alone is
        the whole threshold and holds all the noise."""
        alone = CollusionAnalysis(1, 1, 1, 1)
        assert alone.key_compromised
        assert alone.unknown_noise_fraction == 0.0
        assert alone.residual_noise_shape() == 0.0
        honest = CollusionAnalysis(1, 1, 1, 0)
        assert not honest.key_compromised
        assert honest.missing_key_shares == 1
        assert honest.unknown_noise_fraction == 1.0

    def test_full_population_collusion(self):
        """Everyone colluding: nothing left unknown, key fully held."""
        total = CollusionAnalysis(200, 200, 20, 200)
        assert total.key_compromised
        assert total.missing_key_shares == 0
        assert total.unknown_noise_fraction == 0.0
        assert total.residual_noise_shape() == 0.0


class TestMonotonicity:
    @given(
        population=st.integers(2, 10_000),
        threshold_fraction=st.floats(0.001, 1.0),
        data=st.data(),
    )
    def test_missing_key_shares_monotone_in_collusions(
        self, population, threshold_fraction, data
    ):
        """Adding a colluder never *increases* what the coalition lacks,
        and each new colluder closes the gap by at most one share."""
        threshold = max(1, round(threshold_fraction * population))
        c = data.draw(st.integers(0, population - 1), label="collusions")
        smaller = CollusionAnalysis(population, population, threshold, c)
        larger = CollusionAnalysis(population, population, threshold, c + 1)
        assert larger.missing_key_shares <= smaller.missing_key_shares
        assert smaller.missing_key_shares - larger.missing_key_shares <= 1
        assert larger.unknown_noise_fraction < smaller.unknown_noise_fraction
        # compromise is a monotone event: once in, never out
        if smaller.key_compromised:
            assert larger.key_compromised
