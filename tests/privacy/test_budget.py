"""Tests for the budget-concentration strategies (Sec. 5.1)."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.privacy import (
    BudgetExhausted,
    Greedy,
    GreedyFloor,
    UniformFast,
    strategy_from_name,
)

EPS = 0.69  # Table 2


class TestGreedy:
    def test_exponential_decay(self):
        g = Greedy(EPS)
        assert g.epsilon_for(1) == pytest.approx(EPS / 2)
        assert g.epsilon_for(2) == pytest.approx(EPS / 4)
        assert g.epsilon_for(10) == pytest.approx(EPS / 1024)

    def test_never_exceeds_budget(self):
        g = Greedy(EPS)
        assert sum(g.schedule(64)) <= EPS

    def test_no_iteration_bound(self):
        assert Greedy(EPS).max_iterations() is None

    def test_one_indexed(self):
        with pytest.raises(ValueError):
            Greedy(EPS).epsilon_for(0)


class TestGreedyFloor:
    def test_floor_assignment(self):
        gf = GreedyFloor(EPS, floor_size=4)
        # first floor: ε/(2·4) each
        for i in (1, 2, 3, 4):
            assert gf.epsilon_for(i) == pytest.approx(EPS / 8)
        # second floor: ε/(4·4) each
        for i in (5, 6, 7, 8):
            assert gf.epsilon_for(i) == pytest.approx(EPS / 16)

    def test_never_exceeds_budget(self):
        gf = GreedyFloor(EPS, floor_size=4)
        assert sum(gf.schedule(200)) <= EPS

    def test_floor_one_is_greedy(self):
        g, gf = Greedy(EPS), GreedyFloor(EPS, floor_size=1)
        for i in range(1, 12):
            assert gf.epsilon_for(i) == pytest.approx(g.epsilon_for(i))

    def test_invalid_floor(self):
        with pytest.raises(ValueError):
            GreedyFloor(EPS, floor_size=0)


class TestUniformFast:
    def test_uniform_split(self):
        uf = UniformFast(EPS, n_iterations=5)
        for i in range(1, 6):
            assert uf.epsilon_for(i) == pytest.approx(EPS / 5)

    def test_hard_bound(self):
        uf = UniformFast(EPS, n_iterations=5)
        with pytest.raises(BudgetExhausted):
            uf.epsilon_for(6)

    def test_exactly_spends_budget(self):
        uf = UniformFast(EPS, n_iterations=10)
        assert sum(uf.schedule(10)) == pytest.approx(EPS)

    def test_max_iterations(self):
        assert UniformFast(EPS, 7).max_iterations() == 7


class TestFactory:
    def test_names(self):
        assert isinstance(strategy_from_name("G", EPS), Greedy)
        assert isinstance(strategy_from_name("GF", EPS), GreedyFloor)
        uf = strategy_from_name("UF10", EPS)
        assert isinstance(uf, UniformFast) and uf.n_iterations == 10

    def test_labels(self):
        assert strategy_from_name("G", EPS).name == "G"
        assert strategy_from_name("GF", EPS).name == "GF"
        assert strategy_from_name("UF5", EPS).name == "UF5"

    def test_unknown(self):
        with pytest.raises(ValueError):
            strategy_from_name("XYZ", EPS)

    @pytest.mark.parametrize("label", ["UFx", "UF3x", "UF-3", "UF 5", "UF²"])
    def test_malformed_uf_suffix_is_unknown_strategy(self, label):
        """A bad UF suffix must be the intended 'unknown budget strategy'
        error, not a raw int() ValueError."""
        with pytest.raises(ValueError, match="unknown budget strategy"):
            strategy_from_name(label, EPS)

    def test_bare_uf_uses_default_iterations(self):
        uf = strategy_from_name("UF", EPS, uf_iterations=7)
        assert isinstance(uf, UniformFast) and uf.n_iterations == 7

    def test_invalid_epsilon(self):
        with pytest.raises(ValueError):
            Greedy(0.0)


class TestBudgetInvariant:
    """Property: no strategy ever spends more than ε over any horizon."""

    @settings(max_examples=40, deadline=None)
    @given(
        epsilon=st.floats(min_value=0.01, max_value=10.0),
        horizon=st.integers(min_value=1, max_value=60),
        floor=st.integers(min_value=1, max_value=8),
        uf_n=st.integers(min_value=1, max_value=20),
    )
    def test_total_spend_bounded(self, epsilon, horizon, floor, uf_n):
        for strategy in (
            Greedy(epsilon),
            GreedyFloor(epsilon, floor_size=floor),
            UniformFast(epsilon, n_iterations=uf_n),
        ):
            bound = strategy.max_iterations()
            steps = horizon if bound is None else min(horizon, bound)
            assert sum(strategy.schedule(steps)) <= epsilon * (1 + 1e-9)

    @settings(max_examples=20, deadline=None)
    @given(horizon=st.integers(min_value=2, max_value=30))
    def test_greedy_monotone_decreasing(self, horizon):
        schedule = Greedy(1.0).schedule(horizon)
        assert all(a > b for a, b in zip(schedule, schedule[1:]))
