"""Tests for the divisible-Laplace noise shares (Def. 5 / Lemma 1)."""

import numpy as np
import pytest
from scipy import stats

from repro.privacy import gen_noise_share, gen_noise_shares, sum_of_shares, surplus_correction


class TestGenNoise:
    def test_shape(self):
        rng = np.random.default_rng(0)
        share = gen_noise_share(100, 2.0, rng, size=(7,))
        assert share.shape == (7,)

    def test_invalid_parameters(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            gen_noise_share(0, 1.0, rng)
        with pytest.raises(ValueError):
            gen_noise_share(10, -1.0, rng)

    def test_single_share_is_laplace(self):
        """n_ν = 1: G(1, λ) − G(1, λ) is exactly Laplace(0, λ)."""
        rng = np.random.default_rng(1)
        samples = gen_noise_share(1, 3.0, rng, size=200_000)
        _, p = stats.kstest(samples, stats.laplace(scale=3.0).cdf)
        assert p > 0.01

    def test_share_mean_zero(self):
        rng = np.random.default_rng(2)
        samples = gen_noise_share(50, 2.0, rng, size=100_000)
        assert abs(samples.mean()) < 0.05


class TestDivisibility:
    """Lemma 1: the sum of n_ν shares is distributed as Laplace(0, λ)."""

    @pytest.mark.parametrize("n_shares", [2, 10, 100])
    def test_sum_is_laplace(self, n_shares):
        rng = np.random.default_rng(n_shares)
        lam = 4.0
        trials = 40_000
        shares = gen_noise_share(n_shares, lam, rng, size=(trials, n_shares))
        totals = shares.sum(axis=1)
        _, p = stats.kstest(totals, stats.laplace(scale=lam).cdf)
        assert p > 0.01

    def test_sum_variance(self):
        """Var of the reconstructed Laplace is 2λ² independent of n_ν."""
        rng = np.random.default_rng(7)
        lam = 2.5
        shares = gen_noise_share(25, lam, rng, size=(50_000, 25))
        totals = shares.sum(axis=1)
        assert totals.var() == pytest.approx(2 * lam * lam, rel=0.05)

    def test_matrix_helper(self):
        rng = np.random.default_rng(3)
        matrix = gen_noise_shares(12, 12, 1.0, rng, dimensions=5)
        assert matrix.shape == (12, 5)
        assert sum_of_shares(matrix).shape == (5,)


class TestSurplusCorrection:
    def test_no_surplus_is_zero(self):
        rng = np.random.default_rng(0)
        correction = surplus_correction(100, 100, 1.0, rng, dimensions=4)
        assert np.allclose(correction, 0.0)

    def test_under_contribution_is_zero(self):
        rng = np.random.default_rng(0)
        correction = surplus_correction(90, 100, 1.0, rng, dimensions=4)
        assert np.allclose(correction, 0.0)

    def test_corrected_sum_moments(self):
        """Lemma 3: the correction is *independent* of the surplus shares, so
        the corrected noise stays zero-mean with variance
        ``2λ²·(actual + surplus)/n_ν`` — never *less* perturbation than the
        target Laplace(λ) (that is the privacy-preserving direction)."""
        rng = np.random.default_rng(11)
        lam, n_nu, actual = 3.0, 40, 55
        trials = 30_000
        shares = gen_noise_share(n_nu, lam, rng, size=(trials, actual))
        corrections = np.array(
            [
                surplus_correction(actual, n_nu, lam, rng, dimensions=1)[0]
                for _ in range(trials)
            ]
        )
        corrected = shares.sum(axis=1) - corrections
        surplus = actual - n_nu
        expected_var = 2 * lam * lam * (actual + surplus) / n_nu
        assert abs(corrected.mean()) < 0.1 * lam
        assert corrected.var() == pytest.approx(expected_var, rel=0.08)
        assert corrected.var() >= 2 * lam * lam * 0.95  # at least Laplace-level
