"""Tests for the Appendix B (ε, δ)-probabilistic machinery — including the
paper's own worked numbers."""

import math

import pytest

from repro.privacy import (
    GossipPrivacyPlan,
    delta_atom,
    lemma2_noise_inflation,
    lemma2_scale,
    newscast_exchanges,
    newscast_iota,
)


class TestTheorem3:
    def test_paper_worked_example(self):
        """App. B: δ=0.995, e_max=1e-12, s²=1, n_p=1e6, n_it=10, n=24 →
        δ_atom = 480th root of 0.995 and n_e = 47."""
        atom = delta_atom(0.995, max_iterations=10, series_length=24)
        assert atom == pytest.approx(0.995 ** (1 / 480))
        assert atom == pytest.approx(1 - 1e-5, abs=2e-6)  # the paper's "≈ 1−10⁻⁵"
        iota = 1 - atom  # the paper's convention; see GossipPrivacyPlan.iota
        n_e = newscast_exchanges(10**6, 1e-12, iota, variance=1.0)
        assert n_e == 47

    def test_footnote10_number(self):
        """Sec. 6 footnote: δ = 0.995 reachable with n_e = 47 exchanges."""
        plan = GossipPrivacyPlan(
            delta=0.995,
            e_max=1e-12,
            population=10**6,
            max_iterations=10,
            series_length=24,
        )
        assert plan.exchanges == 47

    def test_logarithmic_in_population(self):
        small = newscast_exchanges(10**3, 1e-6, 0.01)
        large = newscast_exchanges(10**6, 1e-6, 0.01)
        assert large - small == pytest.approx(0.581 * math.log(1000), abs=1.0)

    def test_tighter_error_needs_more_exchanges(self):
        loose = newscast_exchanges(10**4, 1e-3, 0.01)
        tight = newscast_exchanges(10**4, 1e-9, 0.01)
        assert tight > loose

    def test_iota_inversion_consistent(self):
        n_e = newscast_exchanges(10**5, 1e-6, 0.02)
        iota = newscast_iota(10**5, 1e-6, n_e)
        assert iota <= 0.02 * 1.01

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            newscast_exchanges(1, 1e-3, 0.1)
        with pytest.raises(ValueError):
            newscast_exchanges(100, -1.0, 0.1)
        with pytest.raises(ValueError):
            newscast_exchanges(100, 1e-3, 1.5)


class TestDeltaAtom:
    def test_composition_consistency(self):
        """δ_atom^(n_it·2n) == δ."""
        atom = delta_atom(0.9, max_iterations=5, series_length=10)
        assert atom ** (5 * 2 * 10) == pytest.approx(0.9)

    def test_delta_one(self):
        assert delta_atom(1.0, 10, 24) == 1.0

    def test_invalid_delta(self):
        with pytest.raises(ValueError):
            delta_atom(0.0, 10, 24)


class TestLemma2:
    def test_scale_inflation(self):
        base = lemma2_scale(1920.0, 0.69, 0.0)
        inflated = lemma2_scale(1920.0, 0.69, 0.01)
        assert inflated == pytest.approx(base * 1.01)

    def test_noise_inflation_factor(self):
        assert lemma2_noise_inflation(0.0) == 1.0
        assert lemma2_noise_inflation(0.5) == pytest.approx(2.0)
        # c ≥ e_max/(1−e_max): compensation covers the worst shrink
        e = 0.2
        c = lemma2_noise_inflation(e) - 1.0
        assert (1 + c) * (1 - e) >= 1.0 - 1e-12

    def test_invalid_e_max(self):
        with pytest.raises(ValueError):
            lemma2_noise_inflation(1.0)

    def test_plan_bundles_everything(self):
        plan = GossipPrivacyPlan(
            delta=0.99, e_max=1e-9, population=10**4, max_iterations=5, series_length=20
        )
        assert 0 < plan.iota < 1
        assert plan.delta_atom ** (5 * 2 * 20) == pytest.approx(0.99)
        assert plan.noise_inflation >= 1.0
        assert plan.exchanges >= 1
