"""Tests for the Laplace mechanism and the Def. 4 sensitivities."""

import numpy as np
import pytest

from repro.privacy import LaplaceMechanism, joint_sensitivity, laplace_scale, sum_sensitivity


class TestSensitivity:
    def test_cer_values(self):
        """The paper's CER setting: 24 hourly measures in [0, 80] → 1920."""
        assert sum_sensitivity(24, 0.0, 80.0) == 1920.0

    def test_numed_values(self):
        """The paper's NUMED setting: 20 weekly measures in [0, 50] → 1000."""
        assert sum_sensitivity(20, 0.0, 50.0) == 1000.0

    def test_negative_range_uses_abs_max(self):
        assert sum_sensitivity(10, -30.0, 20.0) == 300.0

    def test_joint_adds_count(self):
        assert joint_sensitivity(24, 0.0, 80.0) == 1921.0

    def test_invalid_length(self):
        with pytest.raises(ValueError):
            sum_sensitivity(0, 0.0, 1.0)


class TestScale:
    def test_scale(self):
        assert laplace_scale(1920.0, 0.69) == pytest.approx(2782.6, rel=1e-3)

    def test_zero_epsilon_rejected(self):
        with pytest.raises(ValueError):
            laplace_scale(1.0, 0.0)

    def test_negative_sensitivity_rejected(self):
        with pytest.raises(ValueError):
            laplace_scale(-1.0, 1.0)


class TestMechanism:
    def test_perturb_preserves_shape(self):
        mech = LaplaceMechanism(sensitivity=10.0, epsilon=1.0)
        values = np.zeros((5, 7))
        out = mech.perturb(values, np.random.default_rng(0))
        assert out.shape == (5, 7)
        assert not np.allclose(out, 0.0)

    def test_noise_statistics(self):
        """Mean ≈ 0 and variance ≈ 2λ² for Laplace(0, λ)."""
        mech = LaplaceMechanism(sensitivity=5.0, epsilon=0.5)
        noise = mech.sample_noise((200_000,), np.random.default_rng(1))
        lam = mech.scale
        assert abs(noise.mean()) < 0.1 * lam
        assert noise.var() == pytest.approx(2 * lam * lam, rel=0.05)

    def test_scale_property(self):
        assert LaplaceMechanism(1920.0, 0.69).scale == pytest.approx(1920 / 0.69)
