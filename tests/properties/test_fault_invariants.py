"""Property tests of the fault plane's two load-bearing guarantees.

1. **ε-accounting never under-reports.**  Whatever a fault does to the
   gossip layer, the privacy ledger the events stream reports is exact:
   ``epsilon_spent_total`` is monotone and equals the sum of per-iteration
   charges, and an aborted run reports *at least* everything spent —
   including the aborted iteration's slice, which the accountant charged
   before the iteration ran.

2. **Byzantine injection is detected or provably harmless.**  A tampered
   decryption report either trips the cross-check (and is excluded from
   the canonical output), or its deviation is below the detection
   tolerance — in which case the released centroids are within that same
   tolerance of the fault-free run.  There is no third outcome where an
   altered result flows downstream unnoticed and unbounded.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import (
    Experiment,
    FaultDetected,
    IterationCompleted,
    RunAborted,
    RunCompleted,
    RunSpec,
)

EPSILON = 2000.0


def vec_spec(toy_dataset, toy_initial_centroids, faults, seed=3,
             iterations=2) -> RunSpec:
    return RunSpec.from_dict({
        "plane": "vectorized",
        "seed": seed,
        "strategy": f"UF{iterations}",
        "dataset": {"kind": "timeseries",
                    "params": {"values": toy_dataset.values.tolist(),
                               "dmin": 0.0, "dmax": 60.0, "name": "toy"}},
        "init": {"kind": "matrix",
                 "params": {"values": toy_initial_centroids.tolist()}},
        "params": {"k": 3, "max_iterations": iterations, "exchanges": 12,
                   "tau_fraction": 0.13, "epsilon": EPSILON,
                   "key_bits": 256, "use_smoothing": False, "theta": 0.0},
        "faults": faults,
    })


class TestEpsilonNeverUnderReported:
    @settings(max_examples=10, deadline=None)
    @given(
        seed=st.integers(0, 10_000),
        loss=st.floats(0.0, 0.6),
        duplicate=st.floats(0.0, 0.3),
        delay=st.floats(0.0, 0.3),
    )
    def test_ledger_exact_under_network_faults(
        self, toy_dataset, toy_initial_centroids, seed, loss, duplicate, delay
    ):
        spec = vec_spec(
            toy_dataset, toy_initial_centroids,
            [{"kind": "network",
              "params": {"loss": loss, "duplicate": duplicate,
                         "delay": delay}}],
            seed=seed,
        )
        events = list(Experiment.from_spec(spec).run_iter())
        iterations = [e for e in events if isinstance(e, IterationCompleted)]
        running = 0.0
        for event in iterations:
            running += event.stats.epsilon_spent
            assert event.epsilon_spent_total == pytest.approx(running)
        totals = [e.epsilon_spent_total for e in iterations]
        assert totals == sorted(totals)
        if totals:
            assert totals[-1] <= EPSILON + 1e-9

    @settings(max_examples=6, deadline=None)
    @given(seed=st.integers(0, 10_000), node=st.integers(0, 23))
    def test_aborted_run_charges_the_aborted_iteration(
        self, toy_dataset, toy_initial_centroids, seed, node
    ):
        """The NaN poison aborts at iteration 1; its ε slice was charged
        before the iteration ran and must be reported, never clawed back."""
        spec = vec_spec(
            toy_dataset, toy_initial_centroids,
            [{"kind": "byzantine",
              "params": {"nodes": [node], "mode": "malformed"}}],
            seed=seed,
        )
        events = list(Experiment.from_spec(spec).run_iter())
        aborts = [e for e in events if isinstance(e, RunAborted)]
        assert len(aborts) == 1
        completed = sum(
            e.stats.epsilon_spent for e in events
            if isinstance(e, IterationCompleted)
        )
        # ≥ everything completed, plus exactly the aborted slice (UF
        # strategy: uniform ε/n per iteration)
        assert aborts[0].epsilon_charged >= completed
        assert aborts[0].epsilon_charged == pytest.approx(
            completed + EPSILON / 2
        )
        assert events[-1].reason == "aborted"


class TestDetectedOrHarmless:
    @settings(max_examples=8, deadline=None)
    @given(
        seed=st.integers(0, 10_000),
        scale=st.floats(0.05, 2.0),
        node=st.integers(0, 23),
    )
    def test_large_tamper_is_always_flagged(
        self, toy_dataset, toy_initial_centroids, seed, scale, node
    ):
        """Any deviation well above the cross-check tolerance is caught,
        whichever node deviates and whatever the gossip randomness."""
        spec = vec_spec(
            toy_dataset, toy_initial_centroids,
            [{"kind": "byzantine",
              "params": {"nodes": [node], "mode": "tamper", "scale": scale,
                         "tolerance": 1e-2}}],
            seed=seed,
        )
        events = list(Experiment.from_spec(spec).run_iter())
        flagged = [
            e for e in events
            if isinstance(e, FaultDetected)
            and e.detector == "decryption-cross-check"
            and node in e.participants
        ]
        assert flagged, f"node {node} tampering at {scale:+.0%} went unseen"

    @settings(max_examples=6, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_sub_tolerance_tamper_is_provably_harmless(
        self, toy_dataset, toy_initial_centroids, seed
    ):
        """A deviation below the tolerance may pass — but then it cannot
        alter the released result beyond that tolerance either: the
        canonical node's perturbed means are a sums/counts ratio, and a
        uniform sub-tolerance scaling cancels in it."""
        tiny = 1e-9
        faulted = vec_spec(
            toy_dataset, toy_initial_centroids,
            [{"kind": "byzantine",
              "params": {"nodes": [0], "mode": "tamper", "scale": tiny,
                         "tolerance": 1e-2}}],
            seed=seed,
        )
        baseline = vec_spec(toy_dataset, toy_initial_centroids, [], seed=seed)
        faulted_events = list(Experiment.from_spec(faulted).run_iter())
        assert faulted_events[-1].reason != "aborted"
        result = faulted_events[-1].result
        base = Experiment.from_spec(baseline).run()
        assert result.centroids.shape == base.centroids.shape
        np.testing.assert_allclose(
            result.centroids, base.centroids, rtol=1e-6, atol=1e-9
        )

    @settings(max_examples=4, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_every_event_stream_ends_cleanly(
        self, toy_dataset, toy_initial_centroids, seed
    ):
        """However hostile the deployment, the stream ends in RunCompleted
        — aborts are events, not exceptions."""
        spec = vec_spec(
            toy_dataset, toy_initial_centroids,
            [
                {"kind": "network", "params": {"loss": 0.4}},
                {"kind": "byzantine",
                 "params": {"fraction": 0.2, "mode": "tamper",
                            "scale": 0.8}},
                {"kind": "churn-storm",
                 "params": {"rate": 0.3, "magnitude": 0.3, "duration": 3}},
            ],
            seed=seed,
        )
        events = list(Experiment.from_spec(spec).run_iter())
        assert isinstance(events[-1], RunCompleted)
