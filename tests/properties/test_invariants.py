"""Cross-module property-based tests of the system's load-bearing invariants.

These complement the per-module suites with randomized, end-to-end checks:
the algebra that makes Chiaroscuro *correct* (App. C) and the calibration
that makes it *private* (App. B) hold over the whole input space hypothesis
can reach, not just the hand-picked examples.
"""

import random

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.clustering import assign_to_closest, compute_means, intra_inertia
from repro.core import sma_smooth
from repro.crypto import FixedPointCodec, decrypt, encrypt
from repro.gossip import EESum, EpidemicSum, GossipEngine
from repro.privacy import Greedy, GreedyFloor, UniformFast, laplace_scale


class TestEESumInvariants:
    """Mass conservation — the invariant behind App. C.2.1's equivalence."""

    @settings(max_examples=8, deadline=None)
    @given(
        seed=st.integers(0, 10_000),
        n_nodes=st.integers(4, 12),
        cycles=st.integers(1, 8),
    )
    def test_encrypted_mass_conservation(self, keypair_s2, seed, n_nodes, cycles):
        """Σ (decrypted value / 2^count) over nodes is invariant: exchanges
        redistribute mass, never create or destroy it."""
        codec = FixedPointCodec(keypair_s2.public, fractional_bits=16)
        rng = random.Random(seed)
        values = [rng.uniform(-50, 50) for _ in range(n_nodes)]
        initial = {
            i: [encrypt(keypair_s2.public, codec.encode(v), rng=rng)]
            for i, v in enumerate(values)
        }
        engine = GossipEngine(n_nodes, seed=seed)
        protocol = EESum(keypair_s2.public, initial)
        engine.setup(protocol)
        engine.run_cycles(cycles, protocol)
        total = 0.0
        for node in engine.nodes:
            state = protocol.state_of(node)
            decoded = codec.decode(decrypt(keypair_s2, state.ciphertexts[0]))
            total += decoded / (2.0**state.count)
        assert total == pytest.approx(sum(values), abs=1e-2)

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 10_000), n_nodes=st.integers(4, 30))
    def test_cleartext_weight_conservation(self, seed, n_nodes):
        engine = GossipEngine(n_nodes, seed=seed)
        protocol = EpidemicSum({i: np.array([1.0]) for i in range(n_nodes)})
        engine.setup(protocol)
        engine.run_cycles(5, protocol)
        omega_total = sum(n.state["episum"]["omega"] for n in engine.nodes)
        assert omega_total == pytest.approx(1.0)


class TestBudgetInvariants:
    @settings(max_examples=30, deadline=None)
    @given(
        epsilon=st.floats(0.05, 5.0),
        horizon=st.integers(1, 40),
        floor=st.integers(1, 6),
    )
    def test_all_strategies_bounded_and_positive(self, epsilon, horizon, floor):
        for strategy in (Greedy(epsilon), GreedyFloor(epsilon, floor)):
            schedule = strategy.schedule(horizon)
            assert all(s > 0 for s in schedule)
            assert sum(schedule) <= epsilon * (1 + 1e-9)

    @settings(max_examples=20, deadline=None)
    @given(epsilon=st.floats(0.05, 5.0), sensitivity=st.floats(0.1, 1e5))
    def test_laplace_scale_monotone(self, epsilon, sensitivity):
        """More budget → less noise; more sensitivity → more noise."""
        assert laplace_scale(sensitivity, epsilon) > laplace_scale(
            sensitivity, epsilon * 2
        )
        assert laplace_scale(sensitivity * 2, epsilon) > laplace_scale(
            sensitivity, epsilon
        )


class TestClusteringInvariants:
    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 10_000), k=st.integers(2, 6))
    def test_lloyd_step_never_increases_inertia(self, seed, k):
        """One assignment+recompute step is non-increasing in inertia — the
        monotonicity k-means convergence rests on."""
        rng = np.random.default_rng(seed)
        series = rng.normal(size=(60, 4)) * 5
        centroids = rng.normal(size=(k, 4)) * 5
        labels = assign_to_closest(series, centroids)
        before = intra_inertia(series, centroids, labels)
        means, counts = compute_means(series, labels, k)
        alive = counts > 0
        means = means[alive]
        relabels = assign_to_closest(series, means)
        after = intra_inertia(series, means, relabels)
        assert after <= before + 1e-9

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_smoothing_is_linear(self, seed):
        """SMA is a linear operator: smooth(a + b) == smooth(a) + smooth(b)
        — the property that makes smoothing commute with the sum/count
        division in Sec. 5.2."""
        rng = np.random.default_rng(seed)
        a = rng.normal(size=(3, 12))
        b = rng.normal(size=(3, 12))
        assert np.allclose(
            sma_smooth(a + b, 4), sma_smooth(a, 4) + sma_smooth(b, 4), atol=1e-9
        )


class TestCodecCompositionality:
    @settings(max_examples=20, deadline=None)
    @given(
        values=st.lists(st.floats(-1e3, 1e3, allow_nan=False), min_size=1, max_size=8),
        seed=st.integers(0, 2**31),
    )
    def test_homomorphic_sum_of_reals(self, keypair128, values, seed):
        """encode → encrypt → homomorphic-sum → decrypt → decode == sum."""
        from repro.crypto import homomorphic_add

        pub = keypair128.public
        codec = FixedPointCodec(pub, fractional_bits=24)
        rng = random.Random(seed)
        acc = encrypt(pub, 0, rng=rng)
        for v in values:
            acc = homomorphic_add(pub, acc, encrypt(pub, codec.encode(v), rng=rng))
        assert codec.decode(decrypt(keypair128, acc)) == pytest.approx(
            sum(values), abs=1e-4
        )
