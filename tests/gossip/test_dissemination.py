"""Tests for min-identifier epidemic dissemination."""

import numpy as np
import pytest

from repro.gossip import GossipEngine, MinIdDissemination


class TestDissemination:
    def test_everyone_learns_global_minimum(self):
        proposals = {i: (1000 - i, f"payload-{i}") for i in range(40)}
        engine = GossipEngine(40, seed=0)
        protocol = MinIdDissemination(proposals)
        engine.setup(protocol)
        engine.run_cycles(15, protocol)
        winner = min(proposals.values(), key=lambda p: p[0])
        for node in engine.nodes:
            assert protocol.value_of(node) == winner
        assert protocol.converged(engine.nodes)

    def test_partial_proposals(self):
        """Nodes without a proposal adopt what they hear."""
        proposals = {0: (5, "a"), 1: (3, "b")}
        engine = GossipEngine(20, seed=1)
        protocol = MinIdDissemination(proposals)
        engine.setup(protocol)
        engine.run_cycles(15, protocol)
        for node in engine.nodes:
            assert protocol.value_of(node) == (3, "b")

    def test_numpy_payloads_compare_by_identifier(self):
        """Payloads may be arrays — comparison must use identifiers only."""
        proposals = {
            i: (i + 1, np.full(3, float(i))) for i in range(10)
        }
        engine = GossipEngine(10, seed=2)
        protocol = MinIdDissemination(proposals)
        engine.setup(protocol)
        engine.run_cycles(10, protocol)
        identifier, payload = protocol.value_of(engine.nodes[7])
        assert identifier == 1
        assert np.allclose(payload, 0.0)

    def test_not_converged_initially(self):
        proposals = {i: (i, i) for i in range(10)}
        engine = GossipEngine(10, seed=3)
        protocol = MinIdDissemination(proposals)
        engine.setup(protocol)
        assert not protocol.converged(engine.nodes)

    def test_dissemination_under_churn(self):
        proposals = {i: (i + 1, i) for i in range(50)}
        engine = GossipEngine(50, seed=4, churn=0.3)
        protocol = MinIdDissemination(proposals)
        engine.setup(protocol)
        engine.run_cycles(40, protocol)
        assert protocol.converged(engine.nodes)
