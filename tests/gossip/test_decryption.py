"""Tests for the epidemic threshold decryption (real and token planes)."""

import random

import pytest

from repro.crypto import encrypt
from repro.gossip import EpidemicDecryption, GossipEngine, TokenDecryption


class TestEpidemicDecryption:
    def _run(self, tk, values, population, cycles=30, seed=0):
        rng = random.Random(seed)
        ciphertexts = [encrypt(tk.public, v, rng=rng) for v in values]
        bundles = {i: (list(ciphertexts), 1) for i in range(population)}
        shares = {i: tk.shares[i % len(tk.shares)] for i in range(population)}
        engine = GossipEngine(population, seed=seed)
        protocol = EpidemicDecryption(tk.context, bundles, shares)
        engine.setup(protocol)
        for _ in range(cycles):
            engine.run_cycle(protocol)
            if protocol.all_done(engine.nodes):
                break
        return engine, protocol

    def test_all_nodes_decrypt(self, threshold_keypair):
        values = [111, 222, 333]
        engine, protocol = self._run(threshold_keypair, values, population=9)
        assert protocol.all_done(engine.nodes)
        for node in engine.nodes:
            plaintexts, omega = protocol.plaintexts_of(node)
            assert plaintexts == values
            assert omega == 1

    def test_own_share_applied_at_setup(self, threshold_keypair):
        engine, protocol = self._run(threshold_keypair, [5], population=9, cycles=0)
        for node in engine.nodes:
            assert protocol.state_of(node).n_shares_applied == 1

    def test_distinct_share_requirement(self, threshold_keypair):
        """A node never counts the same key-share twice."""
        engine, protocol = self._run(threshold_keypair, [7], population=9, cycles=30)
        for node in engine.nodes:
            state = protocol.state_of(node)
            assert len(state.partials) == len(set(state.partials))

    def test_not_done_raises(self, threshold_keypair):
        engine, protocol = self._run(threshold_keypair, [9], population=9, cycles=0)
        with pytest.raises(RuntimeError):
            protocol.plaintexts_of(engine.nodes[0])

    def test_share_reuse_across_population(self, threshold_keypair):
        """Population larger than n_shares: identifiers repeat but τ distinct
        shares still suffice (the paper assigns shares at bootstrap)."""
        engine, protocol = self._run(
            threshold_keypair, [31415], population=20, cycles=40
        )
        assert protocol.all_done(engine.nodes)
        plaintexts, _ = protocol.plaintexts_of(engine.nodes[13])
        assert plaintexts == [31415]


class TestTokenPlane:
    def test_all_reach_threshold(self):
        engine = GossipEngine(100, seed=1)
        protocol = TokenDecryption(threshold_count=10)
        engine.setup(protocol)
        cycles = 0
        while protocol.fraction_done(engine.nodes) < 1.0 and cycles < 200:
            engine.run_cycle(protocol)
            cycles += 1
        assert protocol.fraction_done(engine.nodes) == 1.0

    def test_latency_grows_with_threshold(self):
        """Fig. 4(b): messages per peer grow with the key-share threshold."""
        costs = []
        for tau in (5, 20, 60):
            engine = GossipEngine(200, seed=2)
            protocol = TokenDecryption(threshold_count=tau)
            engine.setup(protocol)
            while protocol.fraction_done(engine.nodes) < 1.0:
                engine.run_cycle(protocol)
            costs.append(engine.mean_exchanges_per_node)
        assert costs[0] < costs[1] < costs[2]

    def test_replacement_accelerates(self):
        """The leader-replacement makes collected sets grow by at most one
        *new* share per exchange but laggards jump — everyone finishes in
        O(τ) cycles, not O(τ·log) retries."""
        engine = GossipEngine(64, seed=3)
        protocol = TokenDecryption(threshold_count=32)
        engine.setup(protocol)
        cycles = 0
        while protocol.fraction_done(engine.nodes) < 1.0:
            engine.run_cycle(protocol)
            cycles += 1
        assert cycles <= 4 * 32

    def test_invalid_threshold(self):
        with pytest.raises(ValueError):
            TokenDecryption(0)
