"""Shadow-execution equivalence: vectorized plane vs object engine.

The struct-of-arrays plane must reproduce the object engine's full
protocol semantics *exactly*.  The tests draw the pairing schedule from
the vectorized engine (``run_cycle`` returns it), replay the identical
schedule on the object engine via ``GossipEngine.run_pairing_cycle``, and
assert identity of:

* the EESum delayed-division integers (the mock-homomorphic ciphertexts),
* the scaled ω-weights and the shared exchange counters,
* the decoded sum estimates (bit-equal floats),
* the dissemination identifiers,
* the per-node exchange participation counts,

under churn, at n ∈ {64, 256}.  Inputs sit on a coarse fixed-point grid
and cycle counts stay small enough that every dyadic numerator fits a
float64 mantissa — the regime where both planes are exactly comparable
(``VectorizedEESum.scaled_state`` raises loudly if that ever stops being
true).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.crypto import quantize_to_grid
from repro.gossip import (
    EESum,
    EpidemicSum,
    GossipEngine,
    MinIdDissemination,
    MockHomomorphicOps,
    VectorizedEESum,
    VectorizedGossipEngine,
    VectorizedMinId,
    VectorizedShareCollection,
)

FRACTIONAL_BITS = 8
CYCLES = 20


def _shadow_pair(population: int, churn: float, seed: int, dims: int = 3):
    """Run both planes on one shared schedule; return everything to compare."""
    rng = np.random.default_rng(seed)
    # Values on the 2^-8 grid, small magnitudes: numerators stay well under
    # the 53-bit float64 mantissa for CYCLES <= ~25.
    values = quantize_to_grid(
        rng.uniform(-4.0, 4.0, size=(population, dims)), FRACTIONAL_BITS
    )
    ids = rng.integers(0, 1 << 62, size=population).astype(np.int64)
    # ~1/4 of the nodes propose nothing (the noise-correction scenario where
    # only counter-holding nodes propose).
    no_proposal = rng.random(population) < 0.25
    ids[no_proposal] = VectorizedMinId.NO_PROPOSAL

    vec_engine = VectorizedGossipEngine(population, seed=seed + 1, churn=churn)
    vec_eesum = VectorizedEESum(values, quantize_bits=FRACTIONAL_BITS)
    vec_minid = VectorizedMinId(ids)

    encoded = np.round(values * (1 << FRACTIONAL_BITS)).astype(object)
    obj_engine = GossipEngine(population, seed=seed + 2)
    obj_eesum = EESum(
        None,
        {i: [int(v) for v in encoded[i]] for i in range(population)},
        ops=MockHomomorphicOps(),
    )
    obj_counter = EpidemicSum({i: np.array([1.0]) for i in range(population)})
    obj_minid = MinIdDissemination(
        {
            i: (int(ids[i]), f"payload-{i}")
            for i in range(population)
            if ids[i] != VectorizedMinId.NO_PROPOSAL
        }
    )
    obj_engine.setup(obj_eesum, obj_counter, obj_minid)

    for _ in range(CYCLES):
        left, right = vec_engine.run_cycle(vec_eesum, vec_minid)
        obj_engine.run_pairing_cycle(
            zip(left.tolist(), right.tolist()), obj_eesum, obj_counter, obj_minid
        )

    return vec_engine, vec_eesum, vec_minid, obj_engine, obj_eesum, obj_counter, obj_minid


@pytest.mark.parametrize("population", [64, 256])
@pytest.mark.parametrize("churn", [0.0, 0.25])
def test_eesum_dissemination_churn_equivalence(population, churn):
    (
        vec_engine,
        vec_eesum,
        vec_minid,
        obj_engine,
        obj_eesum,
        obj_counter,
        obj_minid,
    ) = _shadow_pair(population, churn, seed=population + int(churn * 100))

    exchanged_someone = False
    for node in obj_engine.nodes:
        i = node.node_id
        state = obj_eesum.state_of(node)

        # Shared counters and exchange participation counts are identical.
        assert state.count == int(vec_eesum.count[i])
        assert node.exchanges == int(vec_engine.exchanges[i])

        # The delayed-division integers themselves are identical: the
        # vectorized plane re-materializes v·2^{count+f} exactly.
        scaled_values, scaled_omega = vec_eesum.scaled_state(i, FRACTIONAL_BITS)
        assert scaled_values == state.ciphertexts
        assert scaled_omega == state.omega

        # Decoded sum estimates are bit-equal floats where ω > 0.
        if state.omega > 0:
            exchanged_someone = True
            decoded = np.array(
                [
                    _decode(c, state.count, FRACTIONAL_BITS) / (state.omega / 2.0**state.count)
                    for c in state.ciphertexts
                ]
            )
            estimate = vec_eesum.estimates(np.array([i]))[0]
            assert np.array_equal(decoded, estimate)

        # Dissemination: identical identifier beliefs (None ↔ NO_PROPOSAL).
        belief = obj_minid.value_of(node)
        if belief is None:
            assert vec_minid.ids[i] == VectorizedMinId.NO_PROPOSAL
        else:
            assert belief[0] == int(vec_minid.ids[i])

    assert exchanged_someone


def _decode(ciphertext: int, count: int, fractional_bits: int) -> float:
    """Mock-plane decode: descale the delayed divisions + fixed point."""
    return ciphertext / 2.0**count / float(1 << fractional_bits)


@pytest.mark.parametrize("population", [64, 256])
def test_cleartext_counter_equivalence(population):
    """The EpidemicSum counter and the EESum ω spread identically — the
    vectorized plane's single-matrix trick (counter as an extra column)
    matches the object plane's separate protocol."""
    (
        _vec_engine,
        vec_eesum,
        _vec_minid,
        obj_engine,
        _obj_eesum,
        obj_counter,
        _obj_minid,
    ) = _shadow_pair(population, churn=0.1, seed=population)

    for node in obj_engine.nodes:
        clear = node.state["episum"]
        assert clear["omega"] == vec_eesum.omega[node.node_id]


class TestVectorizedMinId:
    def test_converged_mirrors_object_semantics(self):
        ids = np.array([5, 9, VectorizedMinId.NO_PROPOSAL, 7], dtype=np.int64)
        protocol = VectorizedMinId(ids)
        assert not protocol.converged()
        engine = VectorizedGossipEngine(4, seed=12)
        for _ in range(12):
            engine.run_cycle(protocol)
            if protocol.converged():
                break
        assert protocol.converged()
        assert (protocol.ids == 5).all()

    def test_all_silent_population_never_converges(self):
        ids = np.full(4, VectorizedMinId.NO_PROPOSAL, dtype=np.int64)
        protocol = VectorizedMinId(ids)
        engine = VectorizedGossipEngine(4, seed=13)
        engine.run_cycles(5, protocol)
        assert not protocol.converged()


class TestVectorizedEngine:
    def test_pairing_is_disjoint(self):
        engine = VectorizedGossipEngine(1001, seed=3, churn=0.2)
        for _ in range(5):
            left, right = engine.draw_pairing()
            both = np.concatenate([left, right])
            assert len(np.unique(both)) == len(both)
            assert engine.online[both].all()

    def test_rejects_tiny_population(self):
        with pytest.raises(ValueError):
            VectorizedGossipEngine(1)

    def test_exchange_counting(self):
        engine = VectorizedGossipEngine(100, seed=4)
        total = engine.run_cycles(6)
        assert total == 6 * 50
        assert engine.exchanges.sum() == 2 * total

    def test_full_churn_cycle_is_empty(self):
        engine = VectorizedGossipEngine(50, seed=5, churn=0.999)
        total = engine.run_cycles(3)
        assert total <= 3  # occasionally two nodes survive a cycle


class TestVectorizedShareCollection:
    def test_matches_token_semantics_shape(self):
        """Replacement + mutual application: counts grow by at most one per
        cycle and stop exactly at the threshold."""
        engine = VectorizedGossipEngine(500, seed=6)
        protocol = VectorizedShareCollection(500, threshold=30)
        previous = protocol.shares.copy()
        for _ in range(50):
            engine.run_cycle(protocol)
            assert (protocol.shares <= 30).all()
            assert (protocol.shares >= previous).all()
            previous = protocol.shares.copy()
        assert protocol.all_done()

    def test_latency_matches_object_engine_order(self):
        """Collection latency agrees with TokenDecryption within 2× at a
        shared population/threshold (the plane's documented approximation
        only drops duplicate share ids)."""
        from repro.gossip import TokenDecryption

        population, tau = 400, 40
        obj_engine = GossipEngine(population, seed=7)
        token = TokenDecryption(threshold_count=tau)
        obj_engine.setup(token)
        cycles_obj = 0
        while token.fraction_done(obj_engine.nodes) < 1.0 and cycles_obj < 500:
            obj_engine.run_cycle(token)
            cycles_obj += 1
        obj_messages = obj_engine.mean_exchanges_per_node

        vec_engine = VectorizedGossipEngine(population, seed=7)
        collection = VectorizedShareCollection(population, tau)
        cycles_vec = 0
        while not collection.all_done() and cycles_vec < 1000:
            vec_engine.run_cycle(collection)
            cycles_vec += 1
        vec_messages = vec_engine.mean_exchanges_per_node

        assert vec_messages == pytest.approx(obj_messages, rel=1.0)
