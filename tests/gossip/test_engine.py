"""Tests for the cycle-driven gossip engine."""

import random

import pytest

from repro.gossip import GossipEngine, Node
from repro.gossip.engine import GossipProtocol


class CountingProtocol(GossipProtocol):
    """Records every exchange for assertions."""

    def __init__(self):
        self.pairs = []

    def setup(self, node, rng):
        node.state["touched"] = True

    def exchange(self, initiator, contact, rng):
        self.pairs.append((initiator.node_id, contact.node_id))


class TestEngineBasics:
    def test_setup_touches_all_nodes(self):
        engine = GossipEngine(10, seed=0)
        protocol = CountingProtocol()
        engine.setup(protocol)
        assert all(node.state.get("touched") for node in engine.nodes)

    def test_each_online_node_initiates_once(self):
        engine = GossipEngine(20, seed=1)
        protocol = CountingProtocol()
        engine.setup(protocol)
        exchanges = engine.run_cycle(protocol)
        assert exchanges == 20
        initiators = [pair[0] for pair in protocol.pairs]
        assert sorted(initiators) == list(range(20))

    def test_no_self_exchange(self):
        engine = GossipEngine(5, seed=2)
        protocol = CountingProtocol()
        engine.setup(protocol)
        engine.run_cycles(20, protocol)
        assert all(a != b for a, b in protocol.pairs)

    def test_exchange_counting(self):
        engine = GossipEngine(8, seed=3)
        protocol = CountingProtocol()
        engine.setup(protocol)
        total = engine.run_cycles(5, protocol)
        assert total == 40
        # Each exchange counts for both participants.
        assert engine.mean_exchanges_per_node == pytest.approx(2 * 40 / 8)

    def test_needs_two_nodes(self):
        with pytest.raises(ValueError):
            GossipEngine(1)

    def test_deterministic_under_seed(self):
        runs = []
        for _ in range(2):
            engine = GossipEngine(12, seed=7)
            protocol = CountingProtocol()
            engine.setup(protocol)
            engine.run_cycles(3, protocol)
            runs.append(protocol.pairs)
        assert runs[0] == runs[1]


class TestChurn:
    def test_churn_reduces_exchanges(self):
        quiet, noisy = [], []
        for churn, sink in ((0.0, quiet), (0.5, noisy)):
            engine = GossipEngine(50, seed=4, churn=churn)
            protocol = CountingProtocol()
            engine.setup(protocol)
            sink.append(engine.run_cycles(10, protocol))
        assert noisy[0] < quiet[0]

    def test_offline_nodes_do_not_participate(self):
        engine = GossipEngine(30, seed=5, churn=0.4)
        protocol = CountingProtocol()
        engine.setup(protocol)
        engine.run_cycle(protocol)
        offline = {node.node_id for node in engine.nodes if not node.online}
        for a, b in protocol.pairs:
            assert a not in offline and b not in offline

    def test_invalid_churn(self):
        with pytest.raises(ValueError):
            GossipEngine(10, churn=1.0)
