"""Tests for the cleartext epidemic sum (Kempe push–pull)."""

import numpy as np
import pytest

from repro.gossip import EpidemicSum, GossipEngine


def run_sum(values, cycles=40, seed=0, churn=0.0):
    engine = GossipEngine(len(values), seed=seed, churn=churn)
    protocol = EpidemicSum({i: np.array([v], dtype=float) for i, v in enumerate(values)})
    engine.setup(protocol)
    engine.run_cycles(cycles, protocol)
    return engine, protocol


class TestConvergence:
    def test_converges_to_sum(self):
        values = list(range(1, 33))
        engine, protocol = run_sum(values)
        exact = float(sum(values))
        for node in engine.nodes:
            estimate = protocol.estimate(node)
            assert estimate is not None
            assert estimate[0] == pytest.approx(exact, rel=1e-6)

    def test_count_protocol(self):
        """Counting (all-ones) — the ctr of the noise generation."""
        engine, protocol = run_sum([1.0] * 50)
        for node in engine.nodes:
            assert protocol.estimate(node)[0] == pytest.approx(50.0, rel=1e-6)

    def test_mass_conservation(self):
        """Σσ and Σω are invariant under exchanges (the key gossip invariant)."""
        values = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0]
        engine = GossipEngine(8, seed=1)
        protocol = EpidemicSum({i: np.array([v]) for i, v in enumerate(values)})
        engine.setup(protocol)
        for _ in range(10):
            engine.run_cycle(protocol)
            sigma_total = sum(n.state["episum"]["sigma"][0] for n in engine.nodes)
            omega_total = sum(n.state["episum"]["omega"] for n in engine.nodes)
            assert sigma_total == pytest.approx(sum(values))
            assert omega_total == pytest.approx(1.0)

    def test_error_decays_exponentially(self):
        values = [1.0] * 64
        engine = GossipEngine(64, seed=2)
        protocol = EpidemicSum({i: np.array([1.0]) for i in range(64)})
        engine.setup(protocol)
        errors = []
        for _ in range(30):
            engine.run_cycle(protocol)
            errors.append(protocol.max_relative_error(engine.nodes, 64.0))
        finite = [e for e in errors if np.isfinite(e) and e > 0]
        # Later errors should be orders of magnitude below early ones.
        assert finite[-1] < finite[0] * 1e-3

    def test_vector_data(self):
        engine = GossipEngine(16, seed=3)
        data = {i: np.array([i, 2.0 * i, -float(i)]) for i in range(16)}
        protocol = EpidemicSum(data)
        engine.setup(protocol)
        engine.run_cycles(40, protocol)
        expected = np.array([120.0, 240.0, -120.0])
        estimate = protocol.estimate(engine.nodes[5])
        assert np.allclose(estimate, expected, rtol=1e-6)

    def test_estimate_none_before_weight_spreads(self):
        engine = GossipEngine(10, seed=4)
        protocol = EpidemicSum({i: np.array([1.0]) for i in range(10)})
        engine.setup(protocol)
        # Before any cycle only the weight holder can estimate.
        estimates = [protocol.estimate(node) for node in engine.nodes]
        assert sum(e is not None for e in estimates) == 1

    def test_churn_still_converges_approximately(self):
        values = [1.0] * 100
        engine, protocol = run_sum(values, cycles=100, seed=5, churn=0.25)
        errors = [
            abs(protocol.estimate(n)[0] - 100.0) / 100.0
            for n in engine.nodes
            if protocol.estimate(n) is not None
        ]
        assert np.median(errors) < 0.01
