"""Shadow-execution identity for the real-ciphertext vectorized plane.

:class:`CipherEESum` must be *simultaneously* faithful to both references:

* its ciphertext side must match an object-engine :class:`EESum` run with
  real :class:`HomomorphicOps` on the same pairing schedule — the same
  Damgård–Jurik integers, operation for operation;
* its clear side (ω, the epidemic counter) must match the mock
  :class:`VectorizedEESum`'s float sequence bit for bit, because the
  computation step's counter estimates and RNG consumption key off those
  floats.

The schedule is drawn once from the vectorized engine and replayed on the
object engine (``run_pairing_cycle``), exactly as the existing mock-plane
shadow tests do.  Populations 64 and 256, with churn legs; the batch
algebra itself is also pinned bit-identical across the python/gmpy2
bigint kernels and the serial/process execution backends.
"""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.crypto import bigint
from repro.crypto.backend import ProcessPoolBackend, SerialBackend
from repro.crypto.damgard_jurik import FastEncryptor
from repro.gossip import (
    EESum,
    GossipEngine,
    VectorizedEESum,
    VectorizedGossipEngine,
)
from repro.gossip.cipher_array import CipherArray, CipherEESum

GMPY2 = "gmpy2" in bigint.available_backends()
needs_gmpy2 = pytest.mark.skipif(
    not GMPY2, reason="gmpy2 not installed (python backend is the default)"
)

WIDTH = 2  # ciphertexts per node: enough to exercise vector semantics
CYCLES = 6


def _encrypt_rows(public, population: int, seed: int) -> list[list[int]]:
    rng = random.Random(seed)
    encryptor = FastEncryptor(public, rng)
    return [
        [encryptor.encrypt(node * WIDTH + j + 1, rng) for j in range(WIDTH)]
        for node in range(population)
    ]


def _shadow_run(public, population: int, churn: float, seed: int, backend=None):
    """One shared schedule through all three protocol implementations."""
    rows = _encrypt_rows(public, population, seed)

    cipher = CipherEESum(public, rows, backend=backend)
    # Mock reference: any values do — only ω/ctr floats are compared, and
    # those depend on the schedule alone.  Last column mirrors the
    # computation step's cleartext counter column.
    mock_values = np.ones((population, 2))
    mock = VectorizedEESum(mock_values)

    obj_engine = GossipEngine(population, seed=seed + 2)
    obj_eesum = EESum(public, {i: list(rows[i]) for i in range(population)})
    obj_engine.setup(obj_eesum)

    vec_engine = VectorizedGossipEngine(population, seed=seed + 1, churn=churn)
    for _ in range(CYCLES):
        left, right = vec_engine.run_cycle(cipher, mock)
        obj_engine.run_pairing_cycle(
            zip(left.tolist(), right.tolist()), obj_eesum
        )
    return cipher, mock, obj_engine, obj_eesum


@pytest.mark.parametrize("population", [64, 256])
@pytest.mark.parametrize("churn", [0.0, 0.25])
def test_ciphertexts_identical_to_object_engine(
    threshold_keypair, population, churn
):
    """Same schedule ⇒ the same Damgård–Jurik integers on every node."""
    cipher, mock, obj_engine, obj_eesum = _shadow_run(
        threshold_keypair.public, population, churn, seed=population
    )
    advanced = 0
    for node in obj_engine.nodes:
        i = node.node_id
        state = obj_eesum.state_of(node)
        assert state.count == int(cipher.count[i])
        assert state.ciphertexts == cipher.row(i)
        assert state.omega == cipher.scaled_omega(i)
        advanced += state.count > 0
    assert advanced > population // 2


@pytest.mark.parametrize("population", [64, 256])
def test_clear_side_identical_to_mock_plane(threshold_keypair, population):
    """ω and the epidemic counter are the mock plane's exact floats."""
    cipher, mock, _engine, _eesum = _shadow_run(
        threshold_keypair.public, population, churn=0.1, seed=population + 7
    )
    assert np.array_equal(cipher.omega, mock.omega)
    assert np.array_equal(cipher.count, mock.count)
    # The cleartext counter column travels through the same (a+b)·0.5 IEEE
    # sequence as the mock matrix's last column.
    assert np.array_equal(cipher.ctr, mock.values[:, -1])


def test_process_pool_backend_is_bit_identical(threshold_keypair):
    """Worker count cannot change a single ciphertext (batch ops are
    deterministic integer arithmetic; chunking is value-neutral)."""
    serial, *_ = _shadow_run(
        threshold_keypair.public, 64, churn=0.0, seed=64,
        backend=SerialBackend(),
    )
    pool_backend = ProcessPoolBackend(max_workers=2, min_batch=1)
    try:
        pooled, *_ = _shadow_run(
            threshold_keypair.public, 64, churn=0.0, seed=64,
            backend=pool_backend,
        )
    finally:
        pool_backend.close()
    assert pooled.array.rows == serial.array.rows
    assert np.array_equal(pooled.omega, serial.omega)


@needs_gmpy2
def test_bigint_kernels_are_bit_identical(threshold_keypair):
    """python and gmpy2 kernels produce the same exchange-round batches."""
    with bigint.use_backend("python"):
        py, *_ = _shadow_run(threshold_keypair.public, 64, 0.0, seed=464)
    with bigint.use_backend("gmpy2"):
        gm, *_ = _shadow_run(threshold_keypair.public, 64, 0.0, seed=464)
    assert py.array.rows == gm.array.rows


def test_crypto_seconds_accumulates(threshold_keypair):
    cipher, *_ = _shadow_run(threshold_keypair.public, 64, 0.0, seed=31)
    assert cipher.crypto_seconds > 0.0


class TestCipherArrayValidation:
    def test_rejects_ragged_rows(self, threshold_keypair):
        with pytest.raises(ValueError, match="equal width"):
            CipherArray(threshold_keypair.public, [[1, 2], [3]])

    def test_rejects_empty(self, threshold_keypair):
        with pytest.raises(ValueError, match="at least one row"):
            CipherArray(threshold_keypair.public, [])

    def test_eesum_needs_two_nodes(self, threshold_keypair):
        with pytest.raises(ValueError, match="population"):
            CipherEESum(threshold_keypair.public, [[1]])


def test_fault_engine_wrap_is_transparent(threshold_keypair):
    """The fault plane's vectorized wrapper drives CipherEESum unchanged:
    with no faults configured the wrapped run is bit-identical."""
    from repro.faults.engines import FaultyVectorizedEngine
    from repro.faults.plan import FaultPlan

    public = threshold_keypair.public
    rows = _encrypt_rows(public, 32, seed=5)
    plain = CipherEESum(public, [list(r) for r in rows])
    wrapped = CipherEESum(public, [list(r) for r in rows])

    engine_a = VectorizedGossipEngine(32, seed=9)
    engine_b = FaultyVectorizedEngine(
        VectorizedGossipEngine(32, seed=9), FaultPlan((), seed=9), iteration=1
    )
    engine_a.run_cycles(CYCLES, plain)
    engine_b.run_cycles(CYCLES, wrapped)
    assert wrapped.array.rows == plain.array.rows
    assert np.array_equal(wrapped.omega, plain.omega)
