"""Tests for the Newscast-style peer sampling layer."""

import random
from collections import Counter

import pytest

from repro.gossip import GossipEngine, NewscastView


class TestViews:
    def test_initial_views_bounded_and_exclude_self(self):
        engine = GossipEngine(50, seed=0)
        protocol = NewscastView(50, view_size=10)
        engine.setup(protocol)
        for node in engine.nodes:
            view = protocol.view_of(node)
            assert len(view) == 10
            assert node.node_id not in view

    def test_views_stay_bounded_after_exchanges(self):
        engine = GossipEngine(50, seed=1)
        protocol = NewscastView(50, view_size=10)
        engine.setup(protocol)
        engine.run_cycles(20, protocol)
        for node in engine.nodes:
            assert len(protocol.view_of(node)) <= 10
            assert node.node_id not in protocol.view_of(node)

    def test_fresh_descriptors_injected(self):
        """After an exchange, each party knows the other (age 0 entries)."""
        engine = GossipEngine(10, seed=2)
        protocol = NewscastView(10, view_size=5)
        engine.setup(protocol)
        a, b = engine.nodes[0], engine.nodes[1]
        protocol.exchange(a, b, random.Random(0))
        assert b.node_id in protocol.view_of(a)
        assert a.node_id in protocol.view_of(b)

    def test_ages_increase(self):
        engine = GossipEngine(10, seed=3)
        protocol = NewscastView(10, view_size=5)
        engine.setup(protocol)
        a, b = engine.nodes[0], engine.nodes[1]
        protocol.exchange(a, b, random.Random(0))
        # Pre-existing entries aged by one; only the fresh peer descriptor is 0.
        view = protocol.view_of(a)
        assert view[b.node_id] == 0
        assert all(age >= 1 for peer, age in view.items() if peer != b.node_id)

    def test_sampling_mixes_toward_uniform(self):
        """Samples drawn from evolving views cover the population broadly."""
        engine = GossipEngine(40, seed=4)
        protocol = NewscastView(40, view_size=12)
        engine.setup(protocol)
        engine.run_cycles(15, protocol)
        rng = random.Random(5)
        seen = Counter()
        for _ in range(2000):
            node = engine.nodes[rng.randrange(40)]
            contact = protocol.sample_contact(node, rng)
            seen[contact] += 1
        # Every node should be reachable through somebody's view.
        assert len(seen) >= 35

    def test_sample_contact_empty_view(self):
        engine = GossipEngine(5, seed=6)
        protocol = NewscastView(5, view_size=3)
        engine.setup(protocol)
        node = engine.nodes[0]
        node.state["newscast"] = {}
        assert protocol.sample_contact(node, random.Random(0)) is None
