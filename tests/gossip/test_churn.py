"""Tests for the churn model."""

import numpy as np
import pytest

from repro.gossip import ChurnModel


class TestChurnModel:
    def test_mask_rate(self):
        model = ChurnModel(per_iteration=0.3)
        rng = np.random.default_rng(0)
        mask = model.iteration_mask(100_000, rng)
        assert mask.mean() == pytest.approx(0.7, abs=0.01)

    def test_never_empty(self):
        model = ChurnModel(per_iteration=0.999)
        rng = np.random.default_rng(1)
        for _ in range(20):
            assert model.iteration_mask(10, rng).any()

    def test_zero_churn_all_online(self):
        model = ChurnModel()
        mask = model.iteration_mask(50, np.random.default_rng(2))
        assert mask.all()

    def test_zero_churn_consumes_no_rng(self):
        """Determinism parity: a zero-churn model must leave the RNG
        stream exactly where a run without a churn model would — both
        mask surfaces take the draw-free fast path."""
        model = ChurnModel(per_exchange=0.0, per_iteration=0.0)
        rng = np.random.default_rng(7)
        untouched = np.random.default_rng(7)
        model.iteration_mask(1000, rng)
        model.exchange_mask(1000, rng)
        assert rng.bit_generator.state == untouched.bit_generator.state
        # and the next draws are stream-identical to the no-model run
        assert np.array_equal(rng.random(8), untouched.random(8))

    def test_validation(self):
        with pytest.raises(ValueError):
            ChurnModel(per_exchange=1.0)
        with pytest.raises(ValueError):
            ChurnModel(per_iteration=-0.1)
