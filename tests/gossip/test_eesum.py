"""Tests for the encrypted epidemic sum (Algorithm 2) — including the
App. C.2.1 equivalence against the cleartext protocol by shadow execution."""

import random

import numpy as np
import pytest

from repro.crypto import FixedPointCodec, decrypt, encrypt
from repro.gossip import EESum, EpidemicSum, GossipEngine


@pytest.fixture(scope="module")
def setup_eesum(request):
    """Factory running an EESum over n nodes with given scalar values."""

    def build(keypair, values, cycles=12, seed=0):
        codec = FixedPointCodec(keypair.public, fractional_bits=16)
        rng = random.Random(seed)
        initial = {
            i: [encrypt(keypair.public, codec.encode(v), rng=rng)] for i, v in enumerate(values)
        }
        engine = GossipEngine(len(values), seed=seed)
        protocol = EESum(keypair.public, initial)
        engine.setup(protocol)
        engine.run_cycles(cycles, protocol)
        return engine, protocol, codec

    return build


class TestEESumConvergence:
    def test_estimates_global_sum(self, keypair_s2, setup_eesum):
        values = [1.5, -2.0, 3.25, 10.0, 0.0, 4.75, -1.5, 8.0]
        engine, protocol, codec = setup_eesum(keypair_s2, values, cycles=15)
        exact = sum(values)
        for node in engine.nodes:
            state = protocol.state_of(node)
            if state.omega == 0:
                continue
            decoded = codec.decode(decrypt(keypair_s2, state.ciphertexts[0]))
            assert decoded / state.omega == pytest.approx(exact, rel=1e-4)

    def test_weight_spreads_to_everyone(self, keypair_s2, setup_eesum):
        engine, protocol, _ = setup_eesum(keypair_s2, [1.0] * 12, cycles=15)
        assert all(protocol.state_of(node).omega > 0 for node in engine.nodes)

    def test_counter_advances(self, keypair_s2, setup_eesum):
        engine, protocol, _ = setup_eesum(keypair_s2, [1.0] * 6, cycles=5)
        assert all(protocol.state_of(node).count > 0 for node in engine.nodes)

    def test_vector_payload(self, keypair_s2):
        """A two-element vector sums element-wise under one shared counter."""
        codec = FixedPointCodec(keypair_s2.public, fractional_bits=16)
        rng = random.Random(1)
        pub = keypair_s2.public
        initial = {
            i: [
                encrypt(pub, codec.encode(float(i)), rng=rng),
                encrypt(pub, codec.encode(2.0 * i), rng=rng),
            ]
            for i in range(8)
        }
        engine = GossipEngine(8, seed=1)
        protocol = EESum(pub, initial)
        engine.setup(protocol)
        engine.run_cycles(15, protocol)
        node = engine.nodes[3]
        state = protocol.state_of(node)
        first = codec.decode(decrypt(keypair_s2, state.ciphertexts[0])) / state.omega
        second = codec.decode(decrypt(keypair_s2, state.ciphertexts[1])) / state.omega
        assert first == pytest.approx(28.0, rel=1e-4)
        assert second == pytest.approx(56.0, rel=1e-4)

    def test_mismatched_vector_length_rejected(self, keypair_s2):
        pub = keypair_s2.public
        rng = random.Random(2)
        initial = {0: [encrypt(pub, 1, rng=rng)], 1: [encrypt(pub, 1, rng=rng)] * 2}
        engine = GossipEngine(2, seed=2)
        protocol = EESum(pub, initial)
        engine.setup(protocol)
        with pytest.raises(ValueError):
            protocol.exchange(engine.nodes[0], engine.nodes[1], random.Random(0))


class TestAppendixCEquivalence:
    """App. C.2.1: the Alg. 2 update rule is arithmetically equivalent to the
    cleartext push–pull rule — verified by shadow execution on the *same*
    exchange schedule."""

    def test_shadow_equivalence(self, keypair_s2):
        pub = keypair_s2.public
        codec = FixedPointCodec(pub, fractional_bits=16)
        rng = random.Random(3)
        values = [2.0, -1.0, 7.5, 3.0, 0.25, -4.5]
        initial_enc = {
            i: [encrypt(pub, codec.encode(v), rng=rng)] for i, v in enumerate(values)
        }
        initial_clear = {i: np.array([v]) for i, v in enumerate(values)}

        engine = GossipEngine(len(values), seed=3)
        encrypted = EESum(pub, initial_enc)
        cleartext = EpidemicSum(initial_clear)
        engine.setup(encrypted, cleartext)
        engine.run_cycles(10, encrypted, cleartext)

        for node in engine.nodes:
            state = encrypted.state_of(node)
            clear = node.state["episum"]
            # Encrypted value / 2^count must equal the cleartext σ exactly
            # (up to fixed-point resolution).
            decoded = codec.decode(decrypt(keypair_s2, state.ciphertexts[0]))
            assert decoded / (2.0**state.count) == pytest.approx(
                float(clear["sigma"][0]), abs=1e-3
            )
            # Scaled weight likewise mirrors the cleartext ω.
            assert state.omega / (2.0**state.count) == pytest.approx(
                clear["omega"], abs=1e-12
            )
