"""Tests for the vectorized large-population gossip plane."""

import numpy as np
import pytest

from repro.gossip import (
    PushPullSumSimulator,
    dissemination_cycles,
    fit_linear,
    fit_logarithmic,
    messages_to_reach_error,
    simulate_sum_error,
)


class TestPushPullSimulator:
    def test_converges_to_sum(self):
        sim = PushPullSumSimulator(1000, seed=0)
        for _ in range(60):
            sim.run_cycle()
        assert sim.max_relative_error() < 1e-6

    def test_mass_conservation(self):
        sim = PushPullSumSimulator(512, seed=1)
        for _ in range(10):
            sim.run_cycle()
            assert sim.sigma.sum() == pytest.approx(512.0)
            assert sim.omega.sum() == pytest.approx(1.0)

    def test_custom_data(self):
        data = np.arange(100, dtype=float)
        sim = PushPullSumSimulator(100, data=data, seed=2)
        for _ in range(60):
            sim.run_cycle()
        estimates = sim.estimates()
        assert np.allclose(estimates, data.sum(), rtol=1e-6)

    def test_churn_slows_but_converges(self):
        clean = PushPullSumSimulator(1000, seed=3)
        churned = PushPullSumSimulator(1000, churn=0.5, seed=3)
        for _ in range(40):
            clean.run_cycle()
            churned.run_cycle()
        assert clean.max_relative_error() < churned.max_relative_error()
        # Fig. 3(b): even 50 % churn keeps the error a negligible fraction.
        for _ in range(60):
            churned.run_cycle()
        assert churned.max_relative_error() < 1e-3

    def test_messages_accounting(self):
        sim = PushPullSumSimulator(100, seed=4)
        sim.run_cycle()
        # Every paired node logs one message per cycle.
        assert 0 < sim.mean_messages_per_node <= 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            PushPullSumSimulator(1)
        with pytest.raises(ValueError):
            PushPullSumSimulator(10, churn=1.0)


class TestTraces:
    def test_error_trace_monotone_tail(self):
        trace = simulate_sum_error(2000, cycles=70, seed=5)
        finite = [e for e in trace.max_relative_error if np.isfinite(e)]
        assert finite[-1] < 1e-8
        assert len(trace.cycles) == 70

    def test_messages_to_reach_error_logarithmic(self):
        """Fig. 4(a): messages grow roughly logarithmically with population."""
        points = [(1_000, 0), (8_000, 0), (64_000, 0)]
        messages = [
            messages_to_reach_error(pop, target_abs_error=0.001, seed=seed)
            for pop, seed in points
        ]
        assert all(np.isfinite(m) for m in messages)
        assert messages[0] < messages[-1] < 100  # paper: under the hundred
        fit = fit_logarithmic([p for p, _ in points], messages)
        # Log fit should predict the middle point decently.
        assert fit.predict(8_000) == pytest.approx(messages[1], rel=0.25)

    def test_dissemination_latency(self):
        messages, cycles = dissemination_cycles(10_000, seed=6)
        assert np.isfinite(messages)
        assert messages < 50  # paper: < 50 messages for 10⁶ nodes
        assert cycles < 60


class TestFits:
    def test_linear_fit(self):
        fit = fit_linear([1, 2, 3, 4], [2.0, 4.0, 6.0, 8.0])
        assert fit.slope == pytest.approx(2.0)
        assert fit.predict(10) == pytest.approx(20.0)

    def test_log_fit(self):
        xs = [10, 100, 1000]
        ys = [1.0, 2.0, 3.0]  # y = log10(x)
        fit = fit_logarithmic(xs, ys)
        assert fit.predict(10_000) == pytest.approx(4.0, rel=0.01)

    def test_degenerate_rejected(self):
        with pytest.raises(ValueError):
            fit_linear([1.0], [2.0])
        with pytest.raises(ValueError):
            fit_linear([1.0, 1.0], [2.0, 3.0])
